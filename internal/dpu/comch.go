package dpu

import (
	"time"

	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// ChannelMode selects the host<->DPU descriptor channel variant compared in
// Fig. 9.
type ChannelMode int

// Channel variants.
const (
	// ComchE is DOCA Comch with event-driven send/receive over epoll: no
	// dedicated cores, moderate latency, stable under many functions.
	// NADINO's choice (§3.5.4).
	ComchE ChannelMode = iota
	// ComchP is DOCA Comch's producer-consumer ring with busy polling:
	// lowest latency, but ties up one host core per function, and the
	// DNE-side "progress engine" cost scales with monitored endpoints.
	ComchP
	// ChannelTCP is the kernel TCP baseline between host and DPU.
	ChannelTCP
)

func (m ChannelMode) String() string {
	switch m {
	case ComchE:
		return "Comch-E"
	case ComchP:
		return "Comch-P"
	case ChannelTCP:
		return "TCP"
	}
	return "?"
}

// Endpoint is one function's bidirectional descriptor channel to the DNE.
// The DNE side holds the ToDNE queues of all endpoints and serves them from
// its run-to-completion loop.
type Endpoint struct {
	ID     int
	Fn     string
	Tenant string
	mode   ChannelMode
	eng    *sim.Engine
	p      *params.Params

	toDNE  *sim.Queue[mempool.Descriptor]
	toHost *sim.Queue[mempool.Descriptor]
	// work is shared with the owning DNE loop so deliveries wake it.
	work *sim.Signal

	sentToDNE  uint64
	sentToHost uint64

	// freeDel pools delivery timer nodes so the per-descriptor After() on
	// the send path does not allocate a fresh closure per message.
	freeDel []*comchDelivery
}

// comchDelivery is a pooled in-flight descriptor: its fn closure is bound
// once at allocation and re-armed for every transit through the channel.
type comchDelivery struct {
	ep     *Endpoint
	d      mempool.Descriptor
	toHost bool
	fn     func()
}

func (ep *Endpoint) allocDelivery(d mempool.Descriptor, toHost bool) *comchDelivery {
	var dv *comchDelivery
	if n := len(ep.freeDel); n > 0 {
		dv = ep.freeDel[n-1]
		ep.freeDel = ep.freeDel[:n-1]
	} else {
		dv = &comchDelivery{ep: ep}
		dv.fn = dv.run
	}
	dv.d = d
	dv.toHost = toHost
	return dv
}

func (dv *comchDelivery) run() {
	ep := dv.ep
	d := dv.d
	toHost := dv.toHost
	dv.d = mempool.Descriptor{}
	ep.freeDel = append(ep.freeDel, dv)
	if toHost {
		ep.toHost.TryPut(d)
		return
	}
	ep.toDNE.TryPut(d)
	if ep.work != nil {
		ep.work.Pulse()
	}
}

// NewEndpoint creates an endpoint. work is the DNE loop's wake signal (may
// be shared across endpoints and CQs); pass nil if no loop consumes it.
func NewEndpoint(eng *sim.Engine, p *params.Params, mode ChannelMode, id int, fn, tenant string, work *sim.Signal) *Endpoint {
	return &Endpoint{
		ID:     id,
		Fn:     fn,
		Tenant: tenant,
		mode:   mode,
		eng:    eng,
		p:      p,
		toDNE:  sim.NewQueue[mempool.Descriptor](eng, 0),
		toHost: sim.NewQueue[mempool.Descriptor](eng, 0),
		work:   work,
	}
}

// Mode reports the channel variant.
func (ep *Endpoint) Mode() ChannelMode { return ep.mode }

// SendCost is the sender-side software cost of a descriptor send, paid on
// the caller's core.
func (ep *Endpoint) SendCost() time.Duration {
	if ep.mode == ChannelTCP {
		return ep.p.LoopbackTCPCost
	}
	return ep.p.ComchSendCost
}

// deliverLatency is the PCIe/ring/stack transit time of one descriptor.
func (ep *Endpoint) deliverLatency() time.Duration {
	switch ep.mode {
	case ComchE:
		return ep.p.ComchEDeliver
	case ComchP:
		return ep.p.ComchPDeliver
	default:
		return ep.p.LoopbackTCPRTT / 2
	}
}

// HostWakeupCost is what the receiving host function pays per descriptor:
// an epoll wakeup for Comch-E, nothing for busy-polled Comch-P, a kernel
// receive path for TCP.
func (ep *Endpoint) HostWakeupCost() time.Duration {
	switch ep.mode {
	case ComchE:
		return ep.p.ComchEWakeup
	case ComchP:
		return 0
	default:
		return ep.p.LoopbackTCPCost
	}
}

// DNERecvCost is the engine-side cost of pulling one descriptor off this
// endpoint, given how many endpoints the engine monitors. For Comch-P this
// includes the progress-engine epoll that scales with endpoints — the
// scalability cliff of Fig. 9. For TCP it is kernel receive processing.
func (ep *Endpoint) DNERecvCost(endpoints int) time.Duration {
	switch ep.mode {
	case ComchE:
		return 0 // folded into the DNE's per-message costs
	case ComchP:
		return time.Duration(endpoints) * ep.p.ComchPPerEndpoint
	default:
		return ep.p.LoopbackTCPCost
	}
}

// PinsHostCore reports whether the host function must dedicate a core to
// busy-polling this channel (Comch-P's practicality problem).
func (ep *Endpoint) PinsHostCore() bool { return ep.mode == ComchP }

// SendToDNE ships a descriptor host -> DPU. The caller pays SendCost on its
// own core before calling. Engine or process context.
func (ep *Endpoint) SendToDNE(d mempool.Descriptor) {
	ep.sentToDNE++
	d.Trace.BeginStage(trace.StageComchH2D, "comch")
	ep.eng.After(ep.deliverLatency(), ep.allocDelivery(d, false).fn)
}

// SendToHost ships a descriptor DPU -> host.
func (ep *Endpoint) SendToHost(d mempool.Descriptor) {
	ep.sentToHost++
	d.Trace.BeginStage(trace.StageComchD2H, "comch")
	ep.eng.After(ep.deliverLatency(), ep.allocDelivery(d, true).fn)
}

// TryRecvFromHost lets the DNE loop pull one pending descriptor.
func (ep *Endpoint) TryRecvFromHost() (mempool.Descriptor, bool) {
	d, ok := ep.toDNE.TryGet()
	if ok {
		d.Trace.EndStage(trace.StageComchH2D)
	}
	return d, ok
}

// PendingFromHost reports queued host->DNE descriptors.
func (ep *Endpoint) PendingFromHost() int { return ep.toDNE.Len() }

// RecvOnHost blocks the host function until a descriptor arrives. The
// wakeup cost is paid by the caller afterwards (it knows its core).
func (ep *Endpoint) RecvOnHost(pr *sim.Proc) mempool.Descriptor {
	d := ep.toHost.Get(pr)
	d.Trace.EndStage(trace.StageComchD2H)
	return d
}

// TryRecvOnHost is the non-blocking host-side receive (Comch-P pollers).
func (ep *Endpoint) TryRecvOnHost() (mempool.Descriptor, bool) {
	d, ok := ep.toHost.TryGet()
	if ok {
		d.Trace.EndStage(trace.StageComchD2H)
	}
	return d, ok
}

// Stats reports descriptors moved in each direction.
func (ep *Endpoint) Stats() (toDNE, toHost uint64) { return ep.sentToDNE, ep.sentToHost }
