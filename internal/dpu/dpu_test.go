package dpu

import (
	"testing"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func newDPU(t *testing.T) (*sim.Engine, *params.Params, *DPU) {
	t.Helper()
	p := params.Default()
	eng := sim.NewEngine(1)
	t.Cleanup(eng.Stop)
	net := fabric.New(eng, p)
	return eng, p, New(eng, p, "node1", net, 2)
}

func TestDPUCoresAreWimpy(t *testing.T) {
	eng, p, d := newDPU(t)
	var hostDone, dpuDone time.Duration
	host := sim.NewProcessor(eng, "host", p.HostCoreSpeed)
	eng.Spawn("host-job", func(pr *sim.Proc) {
		host.Exec(pr, 10*time.Microsecond)
		hostDone = pr.Now()
	})
	eng.Spawn("dpu-job", func(pr *sim.Proc) {
		d.Core(0).Exec(pr, 10*time.Microsecond)
		dpuDone = pr.Now()
	})
	eng.Run()
	if dpuDone <= hostDone {
		t.Fatalf("DPU core (%v) not slower than host core (%v)", dpuDone, hostDone)
	}
	ratio := float64(dpuDone) / float64(hostDone)
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("DPU slowdown ratio = %.2f, want ~2.2x", ratio)
	}
}

func TestSoCDMASmallOpLatency(t *testing.T) {
	eng, p, d := newDPU(t)
	var done time.Duration
	eng.Spawn("xfer", func(pr *sim.Proc) {
		d.SoCDMA().TransferBlocking(pr, 64)
		done = pr.Now()
	})
	eng.Run()
	// "only 2.6us for 64B DMA read" — plus the tiny per-byte part.
	if done < p.SoCDMAPerOp || done > p.SoCDMAPerOp+time.Microsecond {
		t.Fatalf("64B SoC DMA = %v, want ~%v", done, p.SoCDMAPerOp)
	}
}

func TestSoCDMAQueuesUnderConcurrency(t *testing.T) {
	eng, _, d := newDPU(t)
	var finishes []time.Duration
	for i := 0; i < 4; i++ {
		eng.Spawn("xfer", func(pr *sim.Proc) {
			d.SoCDMA().TransferBlocking(pr, 1024)
			finishes = append(finishes, pr.Now())
		})
	}
	eng.Run()
	if len(finishes) != 4 {
		t.Fatalf("finished %d transfers", len(finishes))
	}
	// Single FIFO channel: each waits behind the previous.
	for i := 1; i < len(finishes); i++ {
		if finishes[i] <= finishes[i-1] {
			t.Fatalf("SoC DMA not serialized: %v", finishes)
		}
	}
	if d.SoCDMA().Ops() != 4 {
		t.Fatalf("ops = %d", d.SoCDMA().Ops())
	}
}

func TestMMapExportRegistersHostMemory(t *testing.T) {
	_, p, d := newDPU(t)
	pool := mempool.NewPool("tenant_1", 4096, 512, p.HugepageSize)
	mr := d.CreateFromExport(Export(pool))
	if mr.Pool != pool {
		t.Fatal("MR does not reference the host pool")
	}
	if mr.Node() != "node1" {
		t.Fatalf("MR node = %v", mr.Node())
	}
	if mr.Pages() != pool.Hugepages() {
		t.Fatalf("MR pages = %d, want %d", mr.Pages(), pool.Hugepages())
	}
}

func TestComchRoundTripLatencyOrdering(t *testing.T) {
	// Fig. 9 shape at one function: Comch-P < Comch-E < TCP round trips.
	rtt := func(mode ChannelMode) time.Duration {
		p := params.Default()
		eng := sim.NewEngine(1)
		defer eng.Stop()
		work := sim.NewSignal(eng)
		ep := NewEndpoint(eng, p, mode, 0, "fn", "t", work)
		hostCore := sim.NewProcessor(eng, "host", p.HostCoreSpeed)
		dpuCore := sim.NewProcessor(eng, "dpu", p.DPUCoreSpeed)
		var rtt time.Duration
		eng.Spawn("fn", func(pr *sim.Proc) {
			start := pr.Now()
			hostCore.Exec(pr, ep.SendCost())
			ep.SendToDNE(mempool.Descriptor{Tenant: "t"})
			d := ep.RecvOnHost(pr)
			hostCore.Exec(pr, ep.HostWakeupCost())
			_ = d
			rtt = pr.Now() - start
		})
		eng.Spawn("dne", func(pr *sim.Proc) {
			for {
				d, ok := ep.TryRecvFromHost()
				if !ok {
					work.Wait(pr)
					continue
				}
				dpuCore.Exec(pr, ep.DNERecvCost(1)+500*time.Nanosecond)
				ep.SendToHost(d)
			}
		})
		eng.RunUntil(time.Second)
		if rtt == 0 {
			t.Fatalf("%v round trip never completed", mode)
		}
		return rtt
	}
	p := rtt(ComchP)
	e := rtt(ComchE)
	tcp := rtt(ChannelTCP)
	if !(p < e && e < tcp) {
		t.Fatalf("RTT ordering violated: Comch-P=%v Comch-E=%v TCP=%v", p, e, tcp)
	}
	// "Comch-P cuts latency by >8x versus TCP" — allow a loose band.
	if float64(tcp)/float64(p) < 4 {
		t.Fatalf("TCP/Comch-P ratio = %.1f, want >> 1", float64(tcp)/float64(p))
	}
	// "Comch-E ... outperforms TCP by 2.7x-3.8x".
	ratio := float64(tcp) / float64(e)
	if ratio < 1.8 || ratio > 6 {
		t.Fatalf("TCP/Comch-E ratio = %.1f, want ~2.7-3.8", ratio)
	}
}

func TestComchPProgressEngineScalesWithEndpoints(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	ep := NewEndpoint(eng, p, ComchP, 0, "fn", "t", nil)
	one := ep.DNERecvCost(1)
	ten := ep.DNERecvCost(10)
	if ten <= one {
		t.Fatalf("progress engine cost flat: 1 ep = %v, 10 eps = %v", one, ten)
	}
	if e := NewEndpoint(eng, p, ComchE, 0, "fn", "t", nil); e.DNERecvCost(10) != e.DNERecvCost(1) {
		t.Fatal("Comch-E recv cost should not scale with endpoints")
	}
}

func TestComchPinsHostCore(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	if !NewEndpoint(eng, p, ComchP, 0, "f", "t", nil).PinsHostCore() {
		t.Fatal("Comch-P must pin a host core")
	}
	if NewEndpoint(eng, p, ComchE, 0, "f", "t", nil).PinsHostCore() {
		t.Fatal("Comch-E must not pin a host core")
	}
}

func TestEndpointFIFO(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	ep := NewEndpoint(eng, p, ComchE, 0, "fn", "t", nil)
	for i := 0; i < 5; i++ {
		ep.SendToDNE(mempool.Descriptor{Seq: uint64(i)})
	}
	var got []uint64
	eng.Spawn("dne", func(pr *sim.Proc) {
		pr.Sleep(time.Millisecond)
		for {
			d, ok := ep.TryRecvFromHost()
			if !ok {
				break
			}
			got = append(got, d.Seq)
		}
	})
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("got %d descriptors", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	toDNE, _ := ep.Stats()
	if toDNE != 5 {
		t.Fatalf("stats toDNE = %d", toDNE)
	}
}
