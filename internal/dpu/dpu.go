// Package dpu models the NVIDIA BlueField-2 SoC: wimpy ARM cores, the slow
// SoC DMA engine that makes on-path offloading expensive (§4.1.1), the
// integrated RNIC, cross-processor memory mapping (DOCA mmap, §3.4.2), and
// the DOCA Comch host<->DPU descriptor channels (§3.5.4).
package dpu

import (
	"fmt"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// DPU is one BlueField-2 attached to a worker node.
type DPU struct {
	eng   *sim.Engine
	p     *params.Params
	node  fabric.NodeID
	cores []*sim.Processor
	soc   *DMAEngine
	rnic  *rdma.RNIC
}

// New creates a DPU for node with n ARM cores, attaching its integrated
// RNIC to the fabric.
func New(eng *sim.Engine, p *params.Params, node fabric.NodeID, net *fabric.Network, nCores int) *DPU {
	d := &DPU{
		eng:  eng,
		p:    p,
		node: node,
		soc:  NewDMAEngine(eng, p),
		rnic: rdma.NewRNIC(eng, p, node, net),
	}
	for i := 0; i < nCores; i++ {
		d.cores = append(d.cores, sim.NewProcessor(eng, fmt.Sprintf("%s/dpu%d", node, i), p.DPUCoreSpeed))
	}
	return d
}

// Node reports the host node this DPU is plugged into.
func (d *DPU) Node() fabric.NodeID { return d.node }

// Core returns ARM core i.
func (d *DPU) Core(i int) *sim.Processor { return d.cores[i] }

// Cores returns all ARM cores.
func (d *DPU) Cores() []*sim.Processor { return d.cores }

// RNIC returns the integrated ConnectX RNIC.
func (d *DPU) RNIC() *rdma.RNIC { return d.rnic }

// SoCDMA returns the SoC's DMA engine (used only in on-path mode).
func (d *DPU) SoCDMA() *DMAEngine { return d.soc }

// DMAEngine is the BlueField SoC DMA: high small-op latency (~2.6 us for a
// 64 B read) and limited bandwidth, with a single FIFO channel — the
// bottleneck that makes on-path offloading collapse under concurrency.
type DMAEngine struct {
	eng       *sim.Engine
	p         *params.Params
	busyUntil time.Duration
	busyTime  time.Duration
	stallTime time.Duration
	ops       uint64
}

// NewDMAEngine returns an idle SoC DMA engine.
func NewDMAEngine(eng *sim.Engine, p *params.Params) *DMAEngine {
	return &DMAEngine{eng: eng, p: p}
}

// Transfer queues a copy of n bytes across the PCIe boundary and invokes
// done when it completes. Engine context.
func (d *DMAEngine) Transfer(n int, done func()) {
	now := d.eng.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := d.p.SoCDMAPerOp + params.Bytes(d.p.SoCDMAPerByte, n)
	d.busyUntil = start + dur
	d.busyTime += dur
	d.ops++
	d.eng.At(d.busyUntil, done)
}

// TransferBlocking is Transfer for process context.
func (d *DMAEngine) TransferBlocking(pr *sim.Proc, n int) {
	q := sim.NewQueue[struct{}](d.eng, 1)
	d.Transfer(n, func() { q.TryPut(struct{}{}) })
	q.Get(pr)
}

// Stall blocks the DMA channel for dur: transfers already queued and any
// issued during the stall complete only after it ends. Models a SoC DMA
// hiccup (firmware housekeeping, PCIe backpressure); injection hook for
// internal/chaos. Stall time is tracked separately from busy time.
func (d *DMAEngine) Stall(dur time.Duration) {
	if dur <= 0 {
		return
	}
	now := d.eng.Now()
	if d.busyUntil < now {
		d.busyUntil = now
	}
	d.busyUntil += dur
	d.stallTime += dur
}

// StallTime reports total injected stall time.
func (d *DMAEngine) StallTime() time.Duration { return d.stallTime }

// BusyTime reports accumulated DMA busy time.
func (d *DMAEngine) BusyTime() time.Duration { return d.busyTime }

// Ops reports completed transfers.
func (d *DMAEngine) Ops() uint64 { return d.ops }

// ExportDesc is DOCA's mmap export descriptor: the host shared-memory agent
// exports a tenant pool so the DPU can (a) address it from its ARM cores
// and (b) register it with the integrated RNIC (§3.4.2).
type ExportDesc struct {
	Prefix string
	Pool   *mempool.Pool
}

// Export is doca_mmap_export_pci + doca_mmap_export_rdma on the host agent.
func Export(pool *mempool.Pool) ExportDesc {
	return ExportDesc{Prefix: pool.Tenant(), Pool: pool}
}

// CreateFromExport is doca_mmap_create_from_export on the DPU: it yields an
// RNIC memory region that points at *host* memory, enabling off-path
// zero-copy — the RNIC DMAs straight into the host pool while the DPU only
// handles descriptors.
func (d *DPU) CreateFromExport(ed ExportDesc) *rdma.MR {
	return d.rnic.RegisterMR(ed.Pool)
}
