package core

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// testConfig builds a small 2-node app: frontend (node1) calls backend
// (node2) and sibling (node1) — one remote and one local hop.
func testConfig(sys System) Config {
	return Config{
		System: sys,
		Nodes:  []string{"node1", "node2"},
		Functions: []FunctionSpec{
			{Name: "frontend", Node: "node1", Service: 20 * time.Microsecond},
			{Name: "backend", Node: "node2", Service: 15 * time.Microsecond},
			{Name: "sibling", Node: "node1", Service: 10 * time.Microsecond},
		},
		Chains: []ChainSpec{{
			Name: "mix", Entry: "frontend", ReqBytes: 512, RespBytes: 1024,
			Calls: []Call{
				{Callee: "backend", ReqBytes: 1024, RespBytes: 1024},
				{Callee: "sibling", ReqBytes: 256, RespBytes: 256},
			},
		}},
		Seed: 1,
	}
}

// runChainLoad drives n closed-loop clients for dur (after setup) and
// returns completed requests and the cluster.
func runChainLoad(t *testing.T, sys System, n int, dur time.Duration) (*Cluster, uint64) {
	t.Helper()
	c := NewCluster(testConfig(sys))
	t.Cleanup(c.Eng.Stop)
	for i := 0; i < n; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("mix", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(dur)
	return c, c.Completed.Total()
}

func TestExchangesCount(t *testing.T) {
	cfg := testConfig(NadinoDNE)
	if got := Exchanges(cfg.Chains[0].Calls); got != 4 {
		t.Fatalf("exchanges = %d, want 4", got)
	}
	nested := []Call{{Callee: "a", Calls: []Call{{Callee: "b"}, {Callee: "c"}}}}
	if got := Exchanges(nested); got != 6 {
		t.Fatalf("nested exchanges = %d, want 6", got)
	}
}

func TestNadinoDNEChainEndToEnd(t *testing.T) {
	c, done := runChainLoad(t, NadinoDNE, 4, 300*time.Millisecond)
	if done < 100 {
		t.Fatalf("completed only %d requests", done)
	}
	h := c.ChainLatency["mix"]
	if h.Mean() <= 0 || h.Mean() > 2*time.Millisecond {
		t.Fatalf("mean chain latency = %v, want sub-millisecond", h.Mean())
	}
	// No drops or send errors anywhere.
	for _, node := range c.cfg.Nodes {
		tx, rx, dnr, dnp, serr := c.Engine(node).Stats()
		if dnr != 0 || dnp != 0 || serr != 0 {
			t.Fatalf("engine %s drops/errors: %d %d %d (tx=%d rx=%d)", node, dnr, dnp, serr, tx, rx)
		}
	}
}

func TestEverySystemServesTheChain(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			_, done := runChainLoad(t, sys, 4, 300*time.Millisecond)
			if done < 20 {
				t.Fatalf("%v completed only %d requests", sys, done)
			}
		})
	}
}

func TestNadinoFastestAtLoad(t *testing.T) {
	const clients = 16
	const dur = 400 * time.Millisecond
	results := make(map[System]uint64)
	for _, sys := range []System{NadinoDNE, Spright, NightCore} {
		_, done := runChainLoad(t, sys, clients, dur)
		results[sys] = done
	}
	if results[NadinoDNE] <= results[Spright] {
		t.Fatalf("NADINO (%d) not above SPRIGHT (%d)", results[NadinoDNE], results[Spright])
	}
	if results[Spright] <= results[NightCore] {
		t.Fatalf("SPRIGHT (%d) not above NightCore (%d)", results[Spright], results[NightCore])
	}
}

func TestBufferConservationAcrossSystems(t *testing.T) {
	for _, sys := range []System{NadinoDNE, NadinoCNE, FuyaoF, Spright, Junction} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			c, done := runChainLoad(t, sys, 2, 200*time.Millisecond)
			if done == 0 {
				t.Fatal("nothing completed")
			}
			// Stop the load by just letting in-flight work drain.
			c.Eng.RunUntil(c.Eng.Now() + 50*time.Millisecond)
			for name, n := range c.nodes {
				for tenant, pool := range n.pools {
					inUse := pool.InUse()
					var posted int
					if n.engine != nil {
						posted = n.engine.SRQ(tenant).Posted()
					}
					// Closed-loop clients keep some requests in flight;
					// allow those few descriptors plus the posted RQ ring.
					if inUse > posted+16 {
						t.Errorf("%s/%s: pool in use = %d, posted = %d — leak?", name, tenant, inUse, posted)
					}
				}
			}
		})
	}
}

func TestFuyaoCreditsFlowBack(t *testing.T) {
	c, done := runChainLoad(t, FuyaoF, 8, 300*time.Millisecond)
	if done < 50 {
		t.Fatalf("completed %d", done)
	}
	for _, n := range c.nodeSeq {
		if n.fuyao.txCount == 0 {
			t.Fatalf("node %s issued no one-sided writes", n.name)
		}
	}
	// After drain, every ring should be full again (credits returned).
	c.Eng.RunUntil(c.Eng.Now() + 50*time.Millisecond)
	for _, n := range c.nodeSeq {
		for peer, ring := range n.fuyao.rings {
			if len(ring) < fuyaoRingSlots-16 {
				t.Errorf("node %s ring to %s holds %d/%d slots", n.name, peer, len(ring), fuyaoRingSlots)
			}
		}
	}
}

func TestNetCPUAccounting(t *testing.T) {
	c, done := runChainLoad(t, NadinoDNE, 8, 300*time.Millisecond)
	if done == 0 {
		t.Fatal("nothing completed")
	}
	elapsed := c.Eng.Now()
	s := c.NetCPUStats(elapsed)
	if !s.OnDPU {
		t.Fatal("NADINO DNE stats should report DPU cores")
	}
	if s.PinnedCores != 2 {
		t.Fatalf("pinned cores = %v, want 2 (one DNE loop per node)", s.PinnedCores)
	}
	if s.PinnedUseful <= 0 || s.PinnedUseful > 2 {
		t.Fatalf("pinned useful = %v", s.PinnedUseful)
	}
	if s.FnCores < 0 {
		t.Fatalf("fn-core net share = %v", s.FnCores)
	}
	if app := c.AppCPUCores(elapsed); app <= 0 {
		t.Fatalf("app cores = %v", app)
	}
}

// engineHeavyConfig is a chain with enough inter-node exchanges that the
// network engine, not a function, is the bottleneck — the regime where the
// DNE/CNE comparison of §4.3 is made.
func engineHeavyConfig(sys System) Config {
	cfg := testConfig(sys)
	for i := range cfg.Functions {
		cfg.Functions[i].Service = 2 * time.Microsecond
	}
	cfg.Chains = []ChainSpec{{
		Name: "mix", Entry: "frontend", ReqBytes: 512, RespBytes: 1024,
		Calls: []Call{
			{Callee: "backend", ReqBytes: 1024, RespBytes: 1024},
			{Callee: "backend", ReqBytes: 1024, RespBytes: 1024},
			{Callee: "backend", ReqBytes: 1024, RespBytes: 1024},
		},
	}}
	return cfg
}

func runHeavyLoad(t *testing.T, sys System, n int, dur time.Duration) uint64 {
	t.Helper()
	c := NewCluster(engineHeavyConfig(sys))
	t.Cleanup(c.Eng.Stop)
	for i := 0; i < n; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("mix", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(dur)
	return c.Completed.Total()
}

func TestDNEOutperformsCNEUnderHighConcurrency(t *testing.T) {
	// §4.3: "NADINO's DNE also outperforms NADINO (CNE) (1.3x~1.8x higher
	// RPS) when handling more than 20 clients".
	const clients = 32
	const dur = 400 * time.Millisecond
	dne := runHeavyLoad(t, NadinoDNE, clients, dur)
	cne := runHeavyLoad(t, NadinoCNE, clients, dur)
	ratio := float64(dne) / float64(cne)
	if ratio < 1.1 {
		t.Fatalf("DNE/CNE RPS ratio = %.2f, want > 1.1 at %d clients", ratio, clients)
	}
	if ratio > 3.0 {
		t.Fatalf("DNE/CNE RPS ratio = %.2f, implausibly high", ratio)
	}
}
