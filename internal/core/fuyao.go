package core

import (
	"fmt"
	"time"

	"nadino/internal/ipc"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// fuyaoEngine reimplements FUYAO's data plane (§4.3 baseline): a CPU-hosted
// per-node network engine that ships inter-node messages with one-sided
// RDMA writes into a dedicated RDMA-only pool on the receiver, where a
// polling core detects arrivals and copies payloads into the node's shared
// memory pool (Fig. 3 (2): separate pools, receiver-side copy). Slot
// credits flow back to senders once the receiver copies out.
type fuyaoEngine struct {
	c     *Cluster
	node  *Node
	owner mempool.Owner

	core     *sim.Processor // engine core (TX + completions)
	pollCore *sim.Processor // receiver polling core (burns a core, §4.3.1)

	inbox *ipc.SKMsg
	work  *sim.Signal

	rdmaPool *mempool.Pool // RDMA-only landing pool
	mr       *rdma.MR
	cq       *rdma.CQ

	conns  map[string]*rdma.ConnPool
	rings  map[string][]rdma.RemoteBuf // free remote slots per destination node
	cqeBuf []rdma.CQE                  // reusable completion drain buffer

	// deferred holds messages waiting for slot credits.
	deferred []mempool.Descriptor

	txCount, rxCount uint64
	creditStalls     uint64
}

// fuyaoRingSlots is the per-destination one-sided landing ring size.
const fuyaoRingSlots = 1024

func newFuyaoEngine(c *Cluster, n *Node) *fuyaoEngine {
	e := &fuyaoEngine{
		c:        c,
		node:     n,
		owner:    mempool.Owner("fuyao@" + string(n.name)),
		core:     sim.NewProcessor(c.Eng, string(n.name)+"/fuyao", c.P.HostCoreSpeed),
		pollCore: sim.NewProcessor(c.Eng, string(n.name)+"/fuyao-poll", c.P.HostCoreSpeed),
		work:     sim.NewSignal(c.Eng),
		rdmaPool: mempool.NewPool(c.cfg.Tenant+"-rdma", c.cfg.BufSize, 4*fuyaoRingSlots, c.P.HugepageSize),
		cq:       rdma.NewCQ(c.Eng),
		conns:    make(map[string]*rdma.ConnPool),
		rings:    make(map[string][]rdma.RemoteBuf),
	}
	e.inbox = ipc.NewSKMsg(c.Eng, c.P, e.work)
	e.mr = n.dpu.RNIC().RegisterMR(e.rdmaPool)
	e.cq.SetNotify(func() { e.work.Pulse() })
	return e
}

// submit hands a descriptor from a local function to the engine. The buffer
// must already be owned by the engine.
func (e *fuyaoEngine) submit(d mempool.Descriptor, _ string) {
	e.inbox.Send(d)
}

// setupFuyao establishes QPs between all node pairs, carves landing rings,
// and starts the engine and poller loops.
func (c *Cluster) setupFuyao(pr *sim.Proc) {
	tenant := c.cfg.Tenant
	done := sim.NewQueue[struct{}](c.Eng, 0)
	jobs := 0
	for i := 0; i < len(c.nodeSeq); i++ {
		for j := i + 1; j < len(c.nodeSeq); j++ {
			a, b := c.nodeSeq[i], c.nodeSeq[j]
			jobs++
			c.Eng.Spawn("fuyao-setup", func(spr *sim.Proc) {
				cpA, cpB := rdma.EstablishPair(spr, c.P, tenant,
					a.dpu.RNIC(), b.dpu.RNIC(), 4,
					nil, nil, a.fuyao.cq, b.fuyao.cq)
				a.fuyao.conns[string(b.name)] = cpA
				b.fuyao.conns[string(a.name)] = cpB
				a.fuyao.rings[string(b.name)] = carveRing(b.fuyao)
				b.fuyao.rings[string(a.name)] = carveRing(a.fuyao)
				done.TryPut(struct{}{})
			})
		}
	}
	for i := 0; i < jobs; i++ {
		done.Get(pr)
	}
	for _, n := range c.nodeSeq {
		e := n.fuyao
		c.Eng.Spawn(string(n.name)+"/fuyao-engine", e.engineLoop)
		c.Eng.Spawn(string(n.name)+"/fuyao-poller", e.pollerLoop)
	}
}

// carveRing allocates landing slots in dst's RDMA-only pool.
func carveRing(dst *fuyaoEngine) []rdma.RemoteBuf {
	slots := make([]rdma.RemoteBuf, 0, fuyaoRingSlots)
	for i := 0; i < fuyaoRingSlots; i++ {
		b, err := dst.rdmaPool.Get("fuyao-ring")
		if err != nil {
			panic(fmt.Sprintf("core: fuyao ring carve: %v", err))
		}
		slots = append(slots, rdma.RemoteBuf{MR: dst.mr, Buf: b})
	}
	return slots
}

// engineLoop is the FUYAO engine's event loop: ingest SK_MSG descriptors
// from local functions (paying interrupt costs — it is CPU-hosted), issue
// one-sided writes when slot credits allow, and recycle source buffers on
// write completions.
func (e *fuyaoEngine) engineLoop(pr *sim.Proc) {
	const batch = 16
	for {
		did := false
		// Retry deferred messages first (credits may have returned).
		if len(e.deferred) > 0 {
			pending := e.deferred
			e.deferred = nil
			for _, d := range pending {
				if !e.txOne(pr, d, false) {
					break
				}
				did = true
			}
		}
		for i := 0; i < batch; i++ {
			backlog := e.inbox.Pending()
			d, ok := e.inbox.TryRecv()
			if !ok {
				break
			}
			e.core.Exec(pr, e.inbox.InterruptCost(backlog))
			if e.txOne(pr, d, true) {
				did = true
			}
		}
		if e.cqeBuf == nil {
			e.cqeBuf = make([]rdma.CQE, batch)
		}
		for i, m := 0, e.cq.PollInto(e.cqeBuf); i < m; i++ {
			cqe := e.cqeBuf[i]
			if cqe.Op == rdma.OpWrite && cqe.Desc.Tenant != "" {
				// Source buffer can be recycled now.
				if err := e.node.pool(cqe.Desc.Tenant).Put(cqe.Desc.Buf, e.owner); err != nil {
					panic(fmt.Sprintf("core: fuyao source recycle: %v", err))
				}
			}
			did = true
		}
		if !did {
			e.work.Wait(pr)
		}
	}
}

// txOne issues one one-sided write, returning false when out of credits.
func (e *fuyaoEngine) txOne(pr *sim.Proc, d mempool.Descriptor, charge bool) bool {
	p := e.c.P
	dst := e.c.fns[d.Dst]
	if dst == nil {
		return true // drop unroutable
	}
	node := string(dst.node.name)
	ring := e.rings[node]
	if len(ring) == 0 {
		e.creditStalls++
		e.deferred = append(e.deferred, d)
		return false
	}
	slot := ring[len(ring)-1]
	e.rings[node] = ring[:len(ring)-1]
	if charge {
		e.core.Exec(pr, p.DNETxCost+p.FuyaoEngineExtra)
	}
	e.core.Exec(pr, p.VerbsPostCost)
	qp := e.conns[node].Pick()
	qp.PostWrite(d, slot)
	e.txCount++
	return true
}

// pollerLoop is the receiver side: scan the RDMA-only region for landed
// writes (FaRM-style), copy each payload into the node's shared-memory
// pool, hand the descriptor to the destination function over SK_MSG, and
// return the slot credit to the sender.
func (e *fuyaoEngine) pollerLoop(pr *sim.Proc) {
	p := e.c.P
	for {
		e.pollCore.Exec(pr, p.OneSidedPollCost)
		landed := e.mr.PollLanded()
		if len(landed) == 0 {
			pr.Sleep(p.FuyaoPollInterval)
			continue
		}
		for _, l := range landed {
			// The receiver-side copy that two-sided RDMA avoids.
			e.pollCore.Exec(pr, p.MemcpyBase+params.Bytes(p.MemcpyPerByteCold, l.Bytes))
			dstFn := e.c.fns[l.Desc.Dst]
			if dstFn == nil {
				e.returnCredit(l)
				continue
			}
			buf, err := e.c.getBufferRetry(pr, e.node.pool(l.Desc.Tenant), dstFn.owner)
			if err != nil {
				e.returnCredit(l)
				continue
			}
			d := l.Desc
			d.Buf = buf
			e.pollCore.Exec(pr, p.SKMsgSendCost)
			dstFn.localIn.Send(d)
			e.rxCount++
			e.returnCredit(l)
		}
	}
}

// returnCredit ships the landed slot back to the sender's free ring.
func (e *fuyaoEngine) returnCredit(l rdma.Landed) {
	srcFn := e.c.fns[l.Desc.Src]
	if srcFn == nil {
		return
	}
	sender := srcFn.node.fuyao
	slot := rdma.RemoteBuf{MR: e.mr, Buf: l.Buf}
	here := string(e.node.name)
	e.c.Eng.After(3*time.Microsecond, func() {
		sender.rings[here] = append(sender.rings[here], slot)
		sender.work.Pulse()
	})
}
