package core

import (
	"fmt"
	"time"

	"nadino/internal/speculate"
	"nadino/internal/telemetry"
)

// Instrument registers the cluster-wide standard telemetry probe set on reg,
// mirroring NewChaos's target registry: one call wires every layer with
// stable, labeled series names. Per node it covers the DPU ARM cores and SoC
// DMA, the RNIC (ICM cache, pipeline, RNR retries), the DNE worker/keeper
// cores, scheduler and keeper-debt gauges, and the fabric egress link;
// cluster-wide it covers the ingress gateway, per-chain latency and goodput,
// and the engine's event backlog. All sources are pull-based accessors, so
// instrumenting adds no cost to the simulation's hot paths — only the
// scraper touches them, once per period.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	eng := c.Eng
	// build_info and uptime by both clocks, per exposition convention. The
	// wall-clock uptime is the one deliberately nondeterministic series a
	// rig exports; everything else stays a pure function of the seed.
	reg.BuildInfo(eng.Now, time.Now())
	reg.Gauge("sim.pending", func() float64 { return float64(eng.Pending()) })

	gw := c.gw
	reg.Rate("ingress.served", func() float64 { return float64(gw.Served()) })
	reg.Gauge("ingress.queue_depth", func() float64 { return float64(gw.QueueDepth()) })
	reg.Gauge("ingress.workers", func() float64 { return float64(gw.ActiveWorkers()) })
	reg.Rate("ingress.dropped", func() float64 { return float64(gw.Dropped()) })

	// spec.* family: speculation control-plane counters. The controller is
	// created lazily (first speculated request), so every accessor re-reads
	// gw.Spec() at scrape time instead of capturing a possibly-nil pointer.
	specStat := func(pick func(st speculate.Stats) uint64) func() float64 {
		return func() float64 {
			if sp := gw.Spec(); sp != nil {
				return float64(pick(sp.Stats()))
			}
			return 0
		}
	}
	reg.Rate("spec.launched", specStat(func(st speculate.Stats) uint64 { return st.Launched }))
	reg.Rate("spec.arms", specStat(func(st speculate.Stats) uint64 { return st.Arms }))
	reg.Rate("spec.clones", specStat(func(st speculate.Stats) uint64 { return st.Clones }))
	reg.Rate("spec.hedges", specStat(func(st speculate.Stats) uint64 { return st.Hedges }))
	reg.Rate("spec.cancels", specStat(func(st speculate.Stats) uint64 { return st.Cancels }))
	reg.Rate("spec.kills", specStat(func(st speculate.Stats) uint64 { return st.Kills }))
	reg.Rate("spec.win_primary", specStat(func(st speculate.Stats) uint64 { return st.WinPrimary }))
	reg.Rate("spec.win_clone", specStat(func(st speculate.Stats) uint64 { return st.WinClone }))
	reg.Rate("spec.win_hedge", specStat(func(st speculate.Stats) uint64 { return st.WinHedge }))
	reg.Rate("spec.fn_kills", func() float64 { return float64(c.specFnKills) })

	reg.Rate("cluster.goodput", func() float64 { return float64(c.Completed.Total()) })
	for i := range c.cfg.Chains {
		name := c.cfg.Chains[i].Name
		reg.HistFrom("chain.latency", c.ChainLatency[name], "chain", name)
	}

	net := c.net
	for _, n := range c.nodeSeq {
		node := n
		ns := string(node.name)

		for i, core := range node.dpu.Cores() {
			core := core
			reg.Rate("dpu.core_util", func() float64 { return core.BusyTime().Seconds() },
				"node", ns, "core", fmt.Sprintf("%d", i))
		}
		soc := node.dpu.SoCDMA()
		reg.Rate("dpu.dma_util", func() float64 { return soc.BusyTime().Seconds() }, "node", ns)
		reg.Rate("dpu.dma_ops", func() float64 { return float64(soc.Ops()) }, "node", ns)

		rnic := node.dpu.RNIC()
		reg.Gauge("rdma.icm_hit_rate", func() float64 {
			h, m := float64(rnic.CacheHits()), float64(rnic.CacheMisses())
			if h+m == 0 {
				return 1
			}
			return h / (h + m)
		}, "node", ns)
		reg.Gauge("rdma.active_qps", func() float64 { return float64(rnic.ActiveQPs()) }, "node", ns)
		reg.Rate("rdma.rnr_retries", func() float64 {
			_, _, _, _, rnr := rnic.Stats()
			return float64(rnr)
		}, "node", ns)
		reg.Rate("rdma.pipe_util", func() float64 { return rnic.PipeBusyTime().Seconds() }, "node", ns)

		if node.engine != nil {
			de := node.engine
			worker, keeper := de.WorkerCore(), de.KeeperCore()
			reg.Rate("dne.worker_util", func() float64 { return worker.BusyTime().Seconds() }, "node", ns)
			reg.Rate("dne.keeper_util", func() float64 { return keeper.BusyTime().Seconds() }, "node", ns)
			reg.Gauge("dne.sched_pending", func() float64 { return float64(de.SchedPending()) }, "node", ns)
			reg.Gauge("dne.keeper_debt", func() float64 { return float64(de.RQDebt()) }, "node", ns)
			for _, ts := range c.tenants {
				tenant := ts.Name
				srq := de.SRQ(tenant)
				reg.Gauge("dne.srq_posted", func() float64 { return float64(srq.Posted()) },
					"node", ns, "tenant", tenant)
			}
		}

		if node.gw != nil {
			g := node.gw
			reg.Gauge("gw.route_version", func() float64 { return float64(g.Routes().Version()) }, "node", ns)
			reg.Rate("gw.forwarded_msgs", func() float64 { return float64(g.Stats().Forwarded) }, "node", ns)
			reg.Rate("gw.forwarded_bytes", func() float64 { return float64(g.Stats().FwdBytes) }, "node", ns)
			reg.Rate("gw.delivered", func() float64 { return float64(g.Stats().Delivered) }, "node", ns)
			reg.Rate("gw.transit", func() float64 { return float64(g.Stats().Transit) }, "node", ns)
			reg.Rate("gw.dropped", func() float64 { return float64(g.Stats().Dropped) }, "node", ns)
			reg.Gauge("gw.pending", func() float64 { return float64(g.Pending()) }, "node", ns)
			reg.Rate("gw.core_util", func() float64 { return g.BusyTime().Seconds() }, "node", ns)
		}

		id := node.name
		reg.Rate("fabric.bytes", func() float64 {
			bytes, _, _ := net.LinkStats(id)
			return float64(bytes)
		}, "node", ns)
		reg.Rate("fabric.drops", func() float64 {
			_, _, drops := net.LinkStats(id)
			return float64(drops)
		}, "node", ns)
		reg.Gauge("fabric.backlog_bytes", func() float64 { return net.LinkBacklogBytes(id) }, "node", ns)
	}
}
