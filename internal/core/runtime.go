package core

import (
	"fmt"
	"time"

	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/trace"
	"nadino/internal/transport"
)

// functionWorker is one handler goroutine of a function: it serves requests
// from the inbox, performs the chain's nested calls through the unified I/O
// library, and responds upstream. With ColdStart configured, a handler that
// has been idle past its KeepWarm window boots cold before serving.
func (c *Cluster) functionWorker(pr *sim.Proc, f *Function) {
	lastServed := time.Duration(-1)
	for {
		d := f.inbox.Get(pr)
		tr := d.Trace
		tr.EndStage(trace.StageFnQueue)
		mc, ok := d.Ctx.(*msgCtx)
		if !ok || mc.Kind != kindRequest || mc.Req == nil {
			panic(fmt.Sprintf("core: %s received malformed request descriptor", f.name))
		}
		if mc.Req.Spec != nil && mc.Req.Spec() {
			// A clone whose group already won elsewhere: kill it at the
			// dequeue boundary — return the buffer, skip the cold start and
			// the application work entirely.
			tr.Event(trace.StageSpecCancel, f.name)
			if err := f.node.pool(f.tenant).Put(d.Buf, f.owner); err != nil {
				panic(fmt.Sprintf("core: %s cancelled clone recycle: %v", f.name, err))
			}
			f.inflight--
			c.specFnKills++
			continue
		}
		if f.spec.ColdStart > 0 {
			idle := lastServed < 0 || pr.Now()-lastServed > f.spec.KeepWarm
			if idle {
				// Container boot: wall-clock delay, not core time.
				sp := tr.Begin(trace.StageFnColdstart, f.name)
				pr.Sleep(f.spec.ColdStart)
				sp.End()
				c.coldStarts++
			}
		}
		rc := mc.Req
		// The request payload has been consumed; recycle its buffer.
		if err := f.node.pool(f.tenant).Put(d.Buf, f.owner); err != nil {
			panic(fmt.Sprintf("core: %s request buffer recycle: %v", f.name, err))
		}
		// Application compute.
		sp := tr.Begin(trace.StageFnExec, f.name)
		c.execApp(pr, f, f.spec.Service)
		sp.End()
		// Nested invocations: consecutive async calls fan out in parallel
		// and join; synchronous calls run in order.
		failed := false
		calls := rc.Calls
		for len(calls) > 0 && !failed {
			group := 1
			if calls[0].Async {
				for group < len(calls) && calls[group].Async {
					group++
				}
			}
			if err := c.invokeGroup(pr, f, calls[:group], rc.Chain, tr); err != nil {
				failed = true
			}
			calls = calls[group:]
		}
		lastServed = pr.Now()
		if !failed {
			c.respond(pr, f, rc, tr)
		}
		f.inflight--
	}
}

// invokeGroup performs one or more invocations; multi-call groups fan out
// concurrently and join before returning.
func (c *Cluster) invokeGroup(pr *sim.Proc, f *Function, calls []Call, chain string, tr *trace.Req) error {
	if len(calls) == 1 {
		return c.invoke(pr, f, calls[0], chain, tr)
	}
	join := sim.NewQueue[error](c.Eng, 0)
	for _, call := range calls {
		call := call
		c.Eng.Spawn(f.name+"/fanout", func(sub *sim.Proc) {
			err := c.invoke(sub, f, call, chain, tr)
			join.TryPut(err)
		})
	}
	var firstErr error
	for range calls {
		if err := join.Get(pr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// execApp charges application compute (tracked separately from data-plane
// CPU for the §4.3.1 efficiency accounting).
func (c *Cluster) execApp(pr *sim.Proc, f *Function, cost time.Duration) {
	f.core.Exec(pr, cost)
	c.appBusy += cost
}

// invoke performs one synchronous downstream call and waits for the
// response. The unified I/O library (send) picks the transport.
func (c *Cluster) invoke(pr *sim.Proc, f *Function, call Call, chain string, tr *trace.Req) error {
	buf, err := c.getBufferRetry(pr, f.node.pool(f.tenant), f.owner)
	if err != nil {
		return err
	}
	cc := &callCtx{q: sim.NewQueue[mempool.Descriptor](c.Eng, 0)}
	d := mempool.Descriptor{
		Tenant: f.tenant, Buf: buf, Len: call.ReqBytes,
		Src: f.name, Dst: call.Callee,
		Ctx: &msgCtx{Kind: kindRequest, Req: &reqCtx{
			Chain: chain, Calls: call.Calls, RespBytes: call.RespBytes,
			ReplyTo: f.name, Call: cc,
		}},
		Trace: tr,
	}
	if err := c.send(pr, f, call.Callee, d); err != nil {
		return err
	}
	resp := cc.q.Get(pr)
	// Consume and recycle the response buffer (the sidecar has already
	// normalized cross-tenant responses into f's own pool).
	if err := f.node.pool(f.tenant).Put(resp.Buf, f.owner); err != nil {
		panic(fmt.Sprintf("core: %s response buffer recycle: %v", f.name, err))
	}
	return nil
}

// respond sends the invocation result upstream: to the calling function, or
// back to the ingress gateway for entry functions.
func (c *Cluster) respond(pr *sim.Proc, f *Function, rc *reqCtx, tr *trace.Req) {
	if rc.IngressDone != nil {
		c.respondIngress(pr, f, rc, tr)
		return
	}
	buf, err := c.getBufferRetry(pr, f.node.pool(f.tenant), f.owner)
	if err != nil {
		return
	}
	d := mempool.Descriptor{
		Tenant: f.tenant, Buf: buf, Len: rc.RespBytes,
		Src: f.name, Dst: rc.ReplyTo,
		Ctx:   &msgCtx{Kind: kindResponse, Call: rc.Call},
		Trace: tr,
	}
	if err := c.send(pr, f, rc.ReplyTo, d); err != nil {
		_ = f.node.pool(f.tenant).Put(buf, f.owner)
	}
}

// respondIngress returns an entry function's result to the gateway.
func (c *Cluster) respondIngress(pr *sim.Proc, f *Function, rc *reqCtx, tr *trace.Req) {
	if f.port != nil {
		// NADINO: the response descriptor travels over RDMA to the
		// ingress node, zero copy all the way.
		buf, err := c.getBufferRetry(pr, f.node.pool(f.tenant), f.owner)
		if err != nil {
			return
		}
		d := mempool.Descriptor{
			Tenant: f.tenant, Buf: buf, Len: rc.RespBytes,
			Src: f.name, Dst: "ingress",
			Ctx:   &msgCtx{Kind: kindResponse, IngressDone: rc.IngressDone, Stamp: rc.Stamp},
			Trace: tr,
			// The response leg keeps the probe: a loser's response is killed
			// at the DNE TX gate, while the winner's response always passes
			// it before the group resolves at the ingress boundary.
			Spec: rc.Spec,
		}
		if err := f.port.Send(pr, f.core, d); err != nil {
			_ = f.node.pool(f.tenant).Put(buf, f.owner)
		}
		return
	}
	// Deferred conversion: the worker terminates TCP outbound too.
	st := c.workerStack()
	sp := tr.Begin(st.TraceStage(), f.name)
	f.core.Exec(pr, transport.SendCost(c.P, st, rc.RespBytes))
	sp.End()
	done := rc.IngressDone
	bytes := rc.RespBytes
	stamp := rc.Stamp
	t0 := c.Eng.Now()
	c.Eng.After(c.tcpTransit(st), func() {
		tr.Record(trace.StageTransit, "wire", t0, c.Eng.Now())
		done(ingressResponse(bytes, stamp))
	})
}

// tcpTransit is the one-way cluster-internal delivery latency over TCP.
func (c *Cluster) tcpTransit(st transport.Stack) time.Duration {
	return transport.TransitLatency(c.P, st) + 2*time.Microsecond
}

// send is the unified I/O library (§3.5): it transparently routes a
// descriptor to its destination over intra-node shared memory or the
// system's inter-node transport.
func (c *Cluster) send(pr *sim.Proc, f *Function, dst string, d mempool.Descriptor) error {
	target := c.resolveInstance(dst)
	if target == nil {
		return fmt.Errorf("core: unknown destination function %q", dst)
	}
	d.Dst = target.name // concrete instance after load balancing
	if mc, ok := d.Ctx.(*msgCtx); ok && mc.Kind == kindRequest {
		// Count the request against the instance from routing time: the
		// autoscaler's concurrency signal must see work queued anywhere
		// along the path, not only what reached the inbox.
		target.inflight++
	}
	p := c.P
	sameNode := target.node == f.node

	pool := f.node.pool(f.tenant)
	switch c.cfg.System {
	case NadinoDNE, NadinoCNE:
		if sameNode {
			// Zero-copy shared memory: token passing + SK_MSG descriptor.
			// (Cross-tenant deliveries get their sidecar copy on the
			// receive side.)
			sp := d.Trace.Begin(trace.StageSKMsg, f.name)
			f.core.Exec(pr, p.SKMsgSendCost+p.SemTokenCost)
			sp.End()
			if err := pool.Transfer(d.Buf, f.owner, target.owner); err != nil {
				return err
			}
			target.localIn.Send(d)
			return nil
		}
		return f.port.Send(pr, f.core, d)

	case FuyaoF, FuyaoK:
		if sameNode {
			sp := d.Trace.Begin(trace.StageSKMsg, f.name)
			f.core.Exec(pr, p.SKMsgSendCost+p.SemTokenCost)
			sp.End()
			if err := pool.Transfer(d.Buf, f.owner, target.owner); err != nil {
				return err
			}
			target.localIn.Send(d)
			return nil
		}
		// Hand off to the node's FUYAO engine for a one-sided write.
		sp := d.Trace.Begin(trace.StageSKMsg, f.name)
		f.core.Exec(pr, p.SKMsgSendCost)
		sp.End()
		if err := pool.Transfer(d.Buf, f.owner, f.node.fuyao.owner); err != nil {
			return err
		}
		f.node.fuyao.submit(d, string(target.node.name))
		return nil

	case Spright, NightCore:
		if sameNode {
			sp := d.Trace.Begin(trace.StageSKMsg, f.name)
			f.core.Exec(pr, p.SKMsgSendCost+p.SemTokenCost)
			sp.End()
			if err := pool.Transfer(d.Buf, f.owner, target.owner); err != nil {
				return err
			}
			target.localIn.Send(d)
			return nil
		}
		// SPRIGHT inter-node: kernel TCP on the function cores, with the
		// payload copied through the sockets.
		sp := d.Trace.Begin(transport.Kernel.TraceStage(), f.name)
		f.core.Exec(pr, transport.SendCost(p, transport.Kernel, d.Len))
		sp.End()
		if err := pool.Put(d.Buf, f.owner); err != nil {
			return err
		}
		c.tcpShip(target, d, transport.Kernel)
		return nil

	case Junction:
		// Junction uses its kernel-bypass TCP stack for every hop, local
		// or remote; data is copied through the stack either way.
		sp := d.Trace.Begin(transport.Junction.TraceStage(), f.name)
		f.core.Exec(pr, transport.SendCost(p, transport.Junction, d.Len))
		sp.End()
		if err := pool.Put(d.Buf, f.owner); err != nil {
			return err
		}
		c.tcpShip(target, d, transport.Junction)
		return nil
	}
	return fmt.Errorf("core: unhandled system %v", c.cfg.System)
}

// tcpShip delivers a copied message to the target's socket inbox after the
// stack's transit latency.
func (c *Cluster) tcpShip(target *Function, d mempool.Descriptor, st transport.Stack) {
	m := tcpMsg{Bytes: d.Len, Src: d.Src, Ctx: d.Ctx.(*msgCtx), Trace: d.Trace}
	t0 := c.Eng.Now()
	c.Eng.After(c.tcpTransit(st), func() {
		m.Trace.Record(trace.StageTransit, "wire", t0, c.Eng.Now())
		target.tcpIn.TryPut(m)
	})
}

// deliver demultiplexes an inbound descriptor at its destination function:
// requests go to the worker inbox, responses to the waiting caller. For
// cross-tenant messages the trusted sidecar first copies the payload into
// the receiving tenant's pool and releases the foreign buffer — tenants
// never share memory (§3.1).
func (c *Cluster) deliver(pr *sim.Proc, f *Function, d mempool.Descriptor) {
	if d.Tenant != "" && d.Tenant != f.tenant {
		srcPool := f.node.pool(d.Tenant)
		sp := d.Trace.Begin(trace.StageSidecar, f.name)
		f.core.Exec(pr, c.P.MemcpyBase+params.Bytes(c.P.MemcpyPerByteCached, d.Len))
		sp.End()
		buf, err := c.getBufferRetry(pr, f.node.pool(f.tenant), f.owner)
		if err != nil {
			_ = srcPool.Put(d.Buf, f.owner)
			return
		}
		if err := srcPool.Put(d.Buf, f.owner); err != nil {
			panic(fmt.Sprintf("core: cross-tenant source recycle: %v", err))
		}
		d.Buf = buf
		d.Tenant = f.tenant
		c.crossTenantCopies++
	}
	mc, ok := d.Ctx.(*msgCtx)
	if !ok {
		panic(fmt.Sprintf("core: %s received descriptor without context", f.name))
	}
	switch mc.Kind {
	case kindRequest:
		d.Trace.BeginStage(trace.StageFnQueue, f.name)
		f.inbox.TryPut(d)
	case kindResponse:
		if mc.Call == nil {
			panic(fmt.Sprintf("core: %s received response with no caller", f.name))
		}
		mc.Call.q.TryPut(d)
	}
}
