// Package core assembles the full NADINO system — worker nodes with DPUs
// and network engines, tenant memory pools, the unified I/O library that
// transparently routes intra-node (shared memory) and inter-node (RDMA)
// transfers (§3.5), and the cluster-wide ingress — together with the
// baseline serverless data planes it is evaluated against (§4.3): NADINO
// (CNE), FUYAO-F/K, SPRIGHT, NightCore, and Junction.
package core

import (
	"time"

	"nadino/internal/ingress"
	"nadino/internal/mempool"
	"nadino/internal/sim"
)

// System identifies a serverless data plane design.
type System int

// The systems compared in §4.3.
const (
	// NadinoDNE is NADINO with the network engine offloaded to the DPU.
	NadinoDNE System = iota
	// NadinoCNE runs NADINO's engine on a host CPU core with SK_MSG input
	// (the apples-to-apples offloading comparison).
	NadinoCNE
	// FuyaoF is FUYAO (one-sided RDMA writes with receiver-side copy and
	// separate intra/inter-node pools) behind the F-stack ingress.
	FuyaoF
	// FuyaoK is FUYAO behind the kernel ingress.
	FuyaoK
	// Spright uses shared memory locally and kernel TCP across nodes,
	// behind the F-stack ingress.
	Spright
	// NightCore runs all functions on a single node with shared-memory
	// pipes and its built-in kernel-based gateway.
	NightCore
	// Junction uses a library-OS kernel-bypass TCP stack for every
	// inter-function hop (local and remote) plus one dedicated scheduler
	// core per node, behind the F-stack ingress.
	Junction
)

func (s System) String() string {
	switch s {
	case NadinoDNE:
		return "NADINO (DNE)"
	case NadinoCNE:
		return "NADINO (CNE)"
	case FuyaoF:
		return "FUYAO-F"
	case FuyaoK:
		return "FUYAO-K"
	case Spright:
		return "SPRIGHT"
	case NightCore:
		return "NightCore"
	case Junction:
		return "Junction"
	}
	return "?"
}

// Systems lists every supported data plane, in the paper's display order.
func Systems() []System {
	return []System{NadinoDNE, NadinoCNE, FuyaoF, FuyaoK, Junction, Spright, NightCore}
}

// IngressKind reports the cluster ingress each system uses (§4.3 setup).
func (s System) IngressKind() ingress.Kind {
	switch s {
	case NadinoDNE, NadinoCNE:
		return ingress.Nadino
	case FuyaoK, NightCore:
		return ingress.KIngress
	default:
		return ingress.FIngress
	}
}

// SingleNode reports whether the system cannot span nodes (NightCore).
func (s System) SingleNode() bool { return s == NightCore }

// FunctionSpec declares one serverless function.
type FunctionSpec struct {
	Name string
	// Tenant owns the function (empty = the cluster's default tenant).
	// Functions of the same tenant share memory; cross-tenant messages
	// pay an explicit sidecar copy (§3.1).
	Tenant string
	// Node places the function (ignored for single-node systems).
	Node string
	// Service is the application compute per invocation.
	Service time.Duration
	// Workers is the function's internal concurrency (handler goroutines
	// sharing its dedicated core). Defaults to 8.
	Workers int
	// ColdStart is the container boot penalty a handler pays when invoked
	// cold. Zero disables cold starts entirely.
	ColdStart time.Duration
	// KeepWarm is how long an idle handler stays warm (SPRIGHT's
	// keep-warm policy, §3.7). Only meaningful with ColdStart > 0; zero
	// means handlers always start cold when ColdStart is set.
	KeepWarm time.Duration
	// MaxScale caps the function's instance count (default 1 = no
	// autoscaling). With MaxScale > 1 the cluster autoscaler adds and
	// drains instances by observed concurrency.
	MaxScale int
	// TargetConcurrency is the per-instance concurrency the autoscaler
	// aims at (default Workers).
	TargetConcurrency int
}

// Call is one downstream invocation in a chain's call tree.
type Call struct {
	Callee    string
	ReqBytes  int
	RespBytes int
	// Async marks the call as part of a parallel fan-out: consecutive
	// async calls are issued together and joined before the next
	// synchronous step — the DAG-style dataflow the I/O library layers on
	// top of its messaging primitives (§3.5).
	Async bool
	// Calls are the nested invocations the callee performs.
	Calls []Call
}

// Exchanges counts the data exchanges (request + response messages) a call
// tree induces, the metric the paper quotes ("more than 11 data exchanges").
func Exchanges(calls []Call) int {
	n := 0
	for _, c := range calls {
		n += 2 + Exchanges(c.Calls)
	}
	return n
}

// ChainSpec is one function chain exposed through the ingress.
type ChainSpec struct {
	Name string
	// Tenant owning the chain (empty = default tenant).
	Tenant    string
	Entry     string
	ReqBytes  int
	RespBytes int
	Calls     []Call // calls the entry function makes, in order
}

// msgKind tags descriptors flowing through the data plane.
type msgKind int

const (
	kindRequest msgKind = iota
	kindResponse
)

// callCtx is a caller's rendezvous for one outstanding invocation.
type callCtx struct {
	q *sim.Queue[mempool.Descriptor]
}

// reqCtx travels with a request descriptor and tells the invoked function
// what to do and where to respond.
type reqCtx struct {
	Chain     string
	Calls     []Call // nested calls this invocation must perform
	RespBytes int
	ReplyTo   string   // function to respond to; "" when ingress-originated
	Call      *callCtx // caller's wait queue (function-to-function calls)
	// IngressDone delivers the final response to the ingress gateway.
	IngressDone func(ingress.Response)
	Stamp       time.Duration
	// Spec is the speculation cancellation probe for cloned requests
	// (speculate.Group.Killed); nil on unspeculated requests and on
	// nested calls — a clone that starts executing runs its call tree to
	// completion, so a mid-chain kill can never strand a waiting caller.
	Spec func() bool
}

// msgCtx is the Ctx payload carried by every descriptor in the cluster.
type msgCtx struct {
	Kind msgKind
	Req  *reqCtx  // kindRequest
	Call *callCtx // kindResponse: where the waiting caller parks
	// IngressDone set on responses headed back to the ingress.
	IngressDone func(ingress.Response)
	Stamp       time.Duration
}
