package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nadino/internal/speculate"
)

// systemNames maps config strings to systems.
var systemNames = map[string]System{
	"nadino-dne": NadinoDNE,
	"nadino-cne": NadinoCNE,
	"fuyao-f":    FuyaoF,
	"fuyao-k":    FuyaoK,
	"spright":    Spright,
	"nightcore":  NightCore,
	"junction":   Junction,
}

// SystemNames lists the accepted system identifiers.
func SystemNames() []string {
	return []string{"nadino-dne", "nadino-cne", "fuyao-f", "fuyao-k", "spright", "nightcore", "junction"}
}

// ParseSystem resolves a config string like "nadino-dne".
func ParseSystem(s string) (System, error) {
	sys, ok := systemNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("core: unknown system %q (want one of %s)", s, strings.Join(SystemNames(), ", "))
	}
	return sys, nil
}

// wireDuration accepts JSON durations as Go duration strings ("150us").
type wireDuration time.Duration

func (d *wireDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = wireDuration(v)
	return nil
}

// wireCall mirrors Call for JSON.
type wireCall struct {
	Callee    string     `json:"callee"`
	ReqBytes  int        `json:"req_bytes"`
	RespBytes int        `json:"resp_bytes"`
	Async     bool       `json:"async"`
	Calls     []wireCall `json:"calls"`
}

func (w wireCall) call() Call {
	c := Call{Callee: w.Callee, ReqBytes: w.ReqBytes, RespBytes: w.RespBytes, Async: w.Async}
	for _, sub := range w.Calls {
		c.Calls = append(c.Calls, sub.call())
	}
	return c
}

// wireConfig is the JSON shape of a cluster definition.
type wireConfig struct {
	System  string       `json:"system"`
	Tenant  string       `json:"tenant"`
	Tenants []TenantSpec `json:"tenants"`
	Nodes   []string     `json:"nodes"`

	Functions []struct {
		Name              string       `json:"name"`
		Tenant            string       `json:"tenant"`
		Node              string       `json:"node"`
		Service           wireDuration `json:"service"`
		Workers           int          `json:"workers"`
		ColdStart         wireDuration `json:"cold_start"`
		KeepWarm          wireDuration `json:"keep_warm"`
		MaxScale          int          `json:"max_scale"`
		TargetConcurrency int          `json:"target_concurrency"`
	} `json:"functions"`

	Chains []struct {
		Name      string     `json:"name"`
		Tenant    string     `json:"tenant"`
		Entry     string     `json:"entry"`
		ReqBytes  int        `json:"req_bytes"`
		RespBytes int        `json:"resp_bytes"`
		Calls     []wireCall `json:"calls"`
	} `json:"chains"`

	IngressWorkers   int  `json:"ingress_workers"`
	IngressAutoScale bool `json:"ingress_autoscale"`
	IngressMax       int  `json:"ingress_max"`
	Gateways         bool `json:"gateways"`
	GatewayWindow    int  `json:"gateway_window"`

	// Speculation and core-discipline knobs (see internal/speculate and
	// sim.Discipline).
	SpecClone    int          `json:"spec_clone"`
	SpecHedge    bool         `json:"spec_hedge"`
	SpecHedgeMin wireDuration `json:"spec_hedge_min"`
	SpecWindow   int          `json:"spec_window"`
	PSCores      bool         `json:"ps_cores"`

	Seed int64 `json:"seed"`
}

// LoadConfig parses a JSON cluster definition (see configs/ for samples)
// and validates it.
func LoadConfig(r io.Reader) (Config, error) {
	var w wireConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Config{}, fmt.Errorf("core: parse config: %w", err)
	}
	sys, err := ParseSystem(w.System)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		System:           sys,
		Tenant:           w.Tenant,
		Tenants:          w.Tenants,
		Nodes:            w.Nodes,
		IngressWorkers:   w.IngressWorkers,
		IngressAutoScale: w.IngressAutoScale,
		IngressMax:       w.IngressMax,
		Gateways:         w.Gateways,
		GatewayWindow:    w.GatewayWindow,
		Speculate: speculate.Policy{
			CloneN:   w.SpecClone,
			Hedge:    w.SpecHedge,
			HedgeMin: time.Duration(w.SpecHedgeMin),
			Window:   w.SpecWindow,
		},
		PSCores: w.PSCores,
		Seed:    w.Seed,
	}
	for _, f := range w.Functions {
		cfg.Functions = append(cfg.Functions, FunctionSpec{
			Name:              f.Name,
			Tenant:            f.Tenant,
			Node:              f.Node,
			Service:           time.Duration(f.Service),
			Workers:           f.Workers,
			ColdStart:         time.Duration(f.ColdStart),
			KeepWarm:          time.Duration(f.KeepWarm),
			MaxScale:          f.MaxScale,
			TargetConcurrency: f.TargetConcurrency,
		})
	}
	for _, ch := range w.Chains {
		spec := ChainSpec{
			Name: ch.Name, Tenant: ch.Tenant, Entry: ch.Entry,
			ReqBytes: ch.ReqBytes, RespBytes: ch.RespBytes,
		}
		for _, c := range ch.Calls {
			spec.Calls = append(spec.Calls, c.call())
		}
		cfg.Chains = append(cfg.Chains, spec)
	}
	return cfg, cfg.Validate()
}

// Validate checks a configuration for structural errors before it is used
// to build a cluster (NewCluster panics on malformed input; Validate turns
// the common mistakes into errors first).
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("core: config has no nodes")
	}
	if len(c.Functions) == 0 {
		return fmt.Errorf("core: config has no functions")
	}
	nodes := map[string]bool{}
	for _, n := range c.Nodes {
		if nodes[n] {
			return fmt.Errorf("core: duplicate node %q", n)
		}
		nodes[n] = true
	}
	fns := map[string]bool{}
	for _, f := range c.Functions {
		if f.Name == "" {
			return fmt.Errorf("core: function with empty name")
		}
		if fns[f.Name] {
			return fmt.Errorf("core: duplicate function %q", f.Name)
		}
		fns[f.Name] = true
		if !c.System.SingleNode() && !nodes[f.Node] {
			return fmt.Errorf("core: function %q placed on unknown node %q", f.Name, f.Node)
		}
	}
	var checkCalls func(chain string, calls []Call) error
	checkCalls = func(chain string, calls []Call) error {
		for _, call := range calls {
			if !fns[call.Callee] {
				return fmt.Errorf("core: chain %q calls unknown function %q", chain, call.Callee)
			}
			if err := checkCalls(chain, call.Calls); err != nil {
				return err
			}
		}
		return nil
	}
	chains := map[string]bool{}
	for _, ch := range c.Chains {
		if chains[ch.Name] {
			return fmt.Errorf("core: duplicate chain %q", ch.Name)
		}
		chains[ch.Name] = true
		if !fns[ch.Entry] {
			return fmt.Errorf("core: chain %q entry %q unknown", ch.Name, ch.Entry)
		}
		if err := checkCalls(ch.Name, ch.Calls); err != nil {
			return err
		}
	}
	return nil
}
