package core

import "time"

// NetCPU summarizes data-plane processor usage for the §4.3.1 efficiency
// comparison (Fig. 16 (4)-(6)).
type NetCPU struct {
	// PinnedCores is how many dedicated cores busy-poll for the data plane
	// (network engines, FUYAO pollers, Junction schedulers). Busy-polling
	// pins its core regardless of load, so these count fully.
	PinnedCores float64
	// PinnedUseful is the useful-work fraction actually consumed on those
	// pinned cores (cores' worth).
	PinnedUseful float64
	// FnCores is the cores' worth of data-plane work measured on function
	// cores (stack traversals, IPC, copies) — total busy minus pure
	// application compute.
	FnCores float64
	// OnDPU reports whether the pinned cores are DPU cores (NADINO DNE) —
	// the paper plots those as DPU rather than CPU utilization.
	OnDPU bool
}

// Total is the headline cores-in-use figure (pinned + function-core share).
func (n NetCPU) Total() float64 { return n.PinnedCores + n.FnCores }

// NetCPUStats measures data-plane processor usage over the elapsed window.
// Call it at the end of a measurement period that started at cluster time
// ~0 (busy counters are cumulative).
func (c *Cluster) NetCPUStats(elapsed time.Duration) NetCPU {
	var s NetCPU
	if elapsed <= 0 {
		return s
	}
	for _, n := range c.nodeSeq {
		switch {
		case n.engine != nil:
			s.PinnedCores++
			s.PinnedUseful += float64(n.engine.WorkerCore().BusyTime()) / float64(elapsed)
			if c.cfg.System == NadinoDNE {
				s.OnDPU = true
			}
		case n.fuyao != nil:
			s.PinnedCores += 2 // engine + receiver poller
			s.PinnedUseful += float64(n.fuyao.core.BusyTime()+n.fuyao.pollCore.BusyTime()) / float64(elapsed)
		case n.schedCore != nil:
			s.PinnedCores++ // Junction's dedicated scheduler core
			s.PinnedUseful++
		}
	}
	var fnBusy time.Duration
	for _, f := range c.fns {
		fnBusy += f.core.BusyTime()
	}
	net := fnBusy - c.appBusy
	if net < 0 {
		net = 0
	}
	s.FnCores = float64(net) / float64(elapsed)
	return s
}

// AppCPUCores reports pure application compute in cores over the window.
func (c *Cluster) AppCPUCores(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.appBusy) / float64(elapsed)
}

// FnUtilization reports per-function core utilization over the window.
func (c *Cluster) FnUtilization(elapsed time.Duration) map[string]float64 {
	out := make(map[string]float64, len(c.fns))
	for name, f := range c.fns {
		out[name] = float64(f.core.BusyTime()) / float64(elapsed)
	}
	return out
}
