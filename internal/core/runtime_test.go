package core

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// fanoutConfig builds a chain whose entry makes three calls to slow
// backends — sequentially or as an async fan-out.
func fanoutConfig(async bool) Config {
	call := func(callee string) Call {
		return Call{Callee: callee, ReqBytes: 512, RespBytes: 512, Async: async}
	}
	return Config{
		System: NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []FunctionSpec{
			{Name: "entry", Node: "node1", Service: 10 * time.Microsecond},
			{Name: "s1", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
			{Name: "s2", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
			{Name: "s3", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
		},
		Chains: []ChainSpec{{
			Name: "fan", Entry: "entry", ReqBytes: 256, RespBytes: 256,
			Calls: []Call{call("s1"), call("s2"), call("s3")},
		}},
		Seed: 1,
	}
}

func runFan(t *testing.T, async bool) time.Duration {
	t.Helper()
	c := NewCluster(fanoutConfig(async))
	defer c.Eng.Stop()
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
		for i := 0; i < 50; i++ {
			c.SubmitChain("fan", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
		}
	})
	c.Eng.RunUntil(time.Second)
	h := c.ChainLatency["fan"]
	if h.Count() != 50 {
		t.Fatalf("completed %d of 50", h.Count())
	}
	return h.Mean()
}

func TestAsyncFanOutOverlapsCalls(t *testing.T) {
	seq := runFan(t, false)
	par := runFan(t, true)
	// Three 100us backends: sequential >= 300us of service alone;
	// parallel should approach one service time plus overheads.
	if par >= seq {
		t.Fatalf("parallel fan-out (%v) not faster than sequential (%v)", par, seq)
	}
	speedup := float64(seq) / float64(par)
	if speedup < 2.0 || speedup > 3.5 {
		t.Fatalf("fan-out speedup = %.2fx, want ~3x for three independent calls", speedup)
	}
}

// coldConfig is a single-function app with cold starts.
func coldConfig(keepWarm time.Duration) Config {
	return Config{
		System: NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []FunctionSpec{{
			Name: "fn", Node: "node1", Service: 20 * time.Microsecond,
			Workers: 2, ColdStart: 5 * time.Millisecond, KeepWarm: keepWarm,
		}},
		Chains: []ChainSpec{{
			Name: "hit", Entry: "fn", ReqBytes: 128, RespBytes: 128,
		}},
		Seed: 1,
	}
}

// runSparse sends widely spaced requests (gaps below keep-warm windows that
// are generous, above stingy ones).
func runSparse(t *testing.T, keepWarm time.Duration) (*Cluster, time.Duration) {
	t.Helper()
	c := NewCluster(coldConfig(keepWarm))
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
		for i := 0; i < 20; i++ {
			c.SubmitChain("hit", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
			pr.Sleep(10 * time.Millisecond)
		}
	})
	c.Eng.RunUntil(2 * time.Second)
	if c.ChainLatency["hit"].Count() != 20 {
		t.Fatalf("completed %d of 20", c.ChainLatency["hit"].Count())
	}
	return c, c.ChainLatency["hit"].Mean()
}

func TestKeepWarmAvoidsColdStarts(t *testing.T) {
	cold, coldLat := runSparse(t, 1*time.Millisecond) // idles past keep-warm every time
	defer cold.Eng.Stop()
	warm, warmLat := runSparse(t, 100*time.Millisecond) // generous keep-warm
	defer warm.Eng.Stop()
	if cold.ColdStarts() < 15 {
		t.Fatalf("stingy keep-warm saw only %d cold starts", cold.ColdStarts())
	}
	// The generous policy pays at most the initial boots.
	if warm.ColdStarts() > 2 {
		t.Fatalf("generous keep-warm still paid %d cold starts", warm.ColdStarts())
	}
	if warmLat >= coldLat/2 {
		t.Fatalf("keep-warm latency %v not well below cold-start latency %v", warmLat, coldLat)
	}
}

func TestNoColdStartFieldsMeansNoColdStarts(t *testing.T) {
	cfg := coldConfig(0)
	cfg.Functions[0].ColdStart = 0
	c := NewCluster(cfg)
	defer c.Eng.Stop()
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
		for i := 0; i < 5; i++ {
			c.SubmitChain("hit", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
			pr.Sleep(50 * time.Millisecond)
		}
	})
	c.Eng.RunUntil(time.Second)
	if c.ColdStarts() != 0 {
		t.Fatalf("cold starts = %d with ColdStart disabled", c.ColdStarts())
	}
}
