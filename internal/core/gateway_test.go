package core

import (
	"fmt"
	"testing"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/fabric"
	"nadino/internal/sim"
)

// TestGatewayClusterServesChains runs the standard 2-node app with the
// gateway tier enabled: every cross-node hop must travel through the
// gateways (the engines' direct QPs see none of them), and the fleet-wide
// conservation law must hold once traffic drains.
func TestGatewayClusterServesChains(t *testing.T) {
	cfg := testConfig(NadinoDNE)
	cfg.Gateways = true
	c := NewCluster(cfg)
	t.Cleanup(c.Eng.Stop)

	const reqs = 200
	c.Eng.Spawn("driver", func(pr *sim.Proc) {
		c.WaitReady(pr)
		for i := 0; i < reqs; i++ {
			c.SubmitChain("mix", i, nil)
			pr.Sleep(500 * time.Microsecond)
		}
	})
	c.Eng.RunUntil(500 * time.Millisecond)

	if done := c.Completed.Total(); done != reqs {
		t.Fatalf("completed %d of %d requests through the gateway tier", done, reqs)
	}
	var fwd, in, out, drop uint64
	for _, g := range c.Gateways() {
		s := g.Stats()
		fwd += s.Forwarded
		in += s.AcceptIn
		out += s.Delivered
		drop += s.Dropped
		if g.Pending() != 0 || g.InflightWrites() != 0 {
			t.Errorf("gateway %s not drained: pending=%d inflight=%d", g.Node(), g.Pending(), g.InflightWrites())
		}
	}
	if fwd == 0 {
		t.Fatal("gateways forwarded nothing — cross-node hops bypassed the tier")
	}
	if in != out+drop {
		t.Fatalf("conservation broken: acceptIn=%d delivered=%d dropped=%d", in, out, drop)
	}
	// frontend->backend and the response are the only cross-node hops; the
	// engine must have handed exactly those to the gateway.
	if e1 := c.Engine("node1").Forwarded(); e1 == 0 {
		t.Error("node1 engine reports no forwards handed to its gateway")
	}
}

// gatewayChaosConfig is a 3-node chain whose only remote hop is
// node1 -> node3, leaving node2 as a pure relay for failover detours.
func gatewayChaosConfig(seed int64) Config {
	return Config{
		System:   NadinoDNE,
		Nodes:    []string{"node1", "node2", "node3"},
		Gateways: true,
		Functions: []FunctionSpec{
			{Name: "f1", Node: "node1", Service: 15 * time.Microsecond},
			{Name: "f2", Node: "node3", Service: 10 * time.Microsecond},
		},
		Chains: []ChainSpec{{
			Name: "hop", Entry: "f1", ReqBytes: 512, RespBytes: 512,
			Calls: []Call{{Callee: "f2", ReqBytes: 1024, RespBytes: 1024}},
		}},
		Seed: seed,
	}
}

// runGatewayChaos drives the 3-node chain through a partition (node1|node3,
// healing after 150ms) and a relay-node crash, returning a stats fingerprint.
func runGatewayChaos(t *testing.T, seed int64) (fingerprint string, completed uint64, transit uint64) {
	t.Helper()
	c := NewCluster(gatewayChaosConfig(seed))
	defer c.Eng.Stop()
	in := c.NewChaos(seed)
	in.Install(chaos.Schedule{
		{At: 150 * time.Millisecond, For: 150 * time.Millisecond,
			Fault: chaos.Partition{A: []fabric.NodeID{"node1"}, B: []fabric.NodeID{"node3"}}},
		{At: 350 * time.Millisecond, For: 30 * time.Millisecond,
			Fault: chaos.NodeCrash{Node: "node2", QPs: "gw-qp@node2"}},
	})
	const reqs = 600
	c.Eng.Spawn("driver", func(pr *sim.Proc) {
		c.WaitReady(pr)
		for i := 0; i < reqs; i++ {
			c.SubmitChain("hop", i, nil)
			pr.Sleep(600 * time.Microsecond)
		}
	})
	c.Eng.RunUntil(time.Second)

	out := fmt.Sprintf("completed=%d|", c.Completed.Total())
	var inSum, delSum, dropSum uint64
	for _, g := range c.Gateways() {
		s := g.Stats()
		inSum += s.AcceptIn
		delSum += s.Delivered
		dropSum += s.Dropped
		transit += s.Transit
		out += fmt.Sprintf("%s:%+v v%d|", g.Node(), s, g.Routes().Version())
	}
	if inSum != delSum+dropSum {
		t.Errorf("seed %d: conservation broken: acceptIn=%d delivered=%d dropped=%d", seed, inSum, delSum, dropSum)
	}
	return out, c.Completed.Total(), transit
}

// TestGatewayChaosFailover drives Partition + NodeCrash against the 3-node
// chain: the route tables must detour through node2 while the partition
// holds (transit legs observed), most traffic must still complete, and two
// same-seed runs must be byte-identical.
func TestGatewayChaosFailover(t *testing.T) {
	a, completed, transit := runGatewayChaos(t, 23)
	if transit == 0 {
		t.Error("no transit legs — the partition never detoured through node2")
	}
	if completed < 500 {
		t.Errorf("only %d of 600 requests completed across partition + crash", completed)
	}
	b, _, _ := runGatewayChaos(t, 23)
	if a != b {
		t.Errorf("same-seed chaos runs diverged:\n  %s\n  %s", a, b)
	}
}
