package core

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// multiTenantConfig deploys two chains owned by two tenants: tenant A's
// chain stays inside tenant A, tenant B's chain calls across the tenant
// boundary into a shared backend owned by tenant A.
func multiTenantConfig(sys System) Config {
	return Config{
		System:  sys,
		Tenant:  "tenant_a",
		Tenants: []TenantSpec{{Name: "tenant_a", Weight: 3}, {Name: "tenant_b", Weight: 1}},
		Nodes:   []string{"node1", "node2"},
		Functions: []FunctionSpec{
			{Name: "a-front", Tenant: "tenant_a", Node: "node1", Service: 10 * time.Microsecond},
			{Name: "a-back", Tenant: "tenant_a", Node: "node2", Service: 10 * time.Microsecond},
			{Name: "b-front", Tenant: "tenant_b", Node: "node1", Service: 10 * time.Microsecond},
			{Name: "b-back", Tenant: "tenant_b", Node: "node2", Service: 10 * time.Microsecond},
		},
		Chains: []ChainSpec{
			{
				Name: "a-chain", Tenant: "tenant_a", Entry: "a-front",
				ReqBytes: 512, RespBytes: 512,
				Calls: []Call{{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024}},
			},
			{
				Name: "b-chain", Tenant: "tenant_b", Entry: "b-front",
				ReqBytes: 512, RespBytes: 512,
				Calls: []Call{
					{Callee: "b-back", ReqBytes: 1024, RespBytes: 1024},
					// Cross-tenant call: b-front invokes tenant A's backend.
					{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024},
				},
			},
		},
		Seed: 1,
	}
}

func driveChains(t *testing.T, c *Cluster, loads map[string]int, dur time.Duration) {
	t.Helper()
	for chain, n := range loads {
		for i := 0; i < n; i++ {
			chain, id := chain, i
			c.Eng.Spawn("client", func(pr *sim.Proc) {
				c.WaitReady(pr)
				respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
				for {
					c.SubmitChain(chain, id, func(r ingress.Response) { respQ.TryPut(r) })
					respQ.Get(pr)
				}
			})
		}
	}
	c.Eng.RunUntil(dur)
}

func TestMultiTenantClusterServesBothTenants(t *testing.T) {
	for _, sys := range []System{NadinoDNE, NadinoCNE} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			c := NewCluster(multiTenantConfig(sys))
			defer c.Eng.Stop()
			driveChains(t, c, map[string]int{"a-chain": 4, "b-chain": 4}, 200*time.Millisecond)
			for _, chain := range []string{"a-chain", "b-chain"} {
				if c.ChainLatency[chain].Count() < 50 {
					t.Errorf("chain %s completed only %d", chain, c.ChainLatency[chain].Count())
				}
			}
		})
	}
}

func TestCrossTenantCallsPayCopies(t *testing.T) {
	c := NewCluster(multiTenantConfig(NadinoDNE))
	defer c.Eng.Stop()
	driveChains(t, c, map[string]int{"b-chain": 2}, 100*time.Millisecond)
	done := c.ChainLatency["b-chain"].Count()
	if done == 0 {
		t.Fatal("cross-tenant chain never completed")
	}
	// Each b-chain request crosses the boundary twice (request into
	// a-back, response out of it).
	copies := c.CrossTenantCopies()
	if copies < 2*done*9/10 {
		t.Fatalf("cross-tenant copies = %d for %d requests, want ~2 per request", copies, done)
	}
	// Same-tenant traffic must not pay copies: run the pure-A chain alone.
	c2 := NewCluster(multiTenantConfig(NadinoDNE))
	defer c2.Eng.Stop()
	driveChains(t, c2, map[string]int{"a-chain": 2}, 100*time.Millisecond)
	if c2.CrossTenantCopies() != 0 {
		t.Fatalf("same-tenant chain paid %d cross-tenant copies", c2.CrossTenantCopies())
	}
}

func TestCrossTenantLatencyPenalty(t *testing.T) {
	// The cross-tenant chain pays sidecar copies on each boundary
	// crossing; compare against a structurally identical same-tenant
	// chain, each measured in isolation so only the copies differ.
	mkCfg := func() Config {
		cfg := multiTenantConfig(NadinoDNE)
		// Make a-chain structurally identical to b-chain: both call their
		// own-node2 backend, then a-back.
		cfg.Chains[0].Calls = []Call{
			{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024},
			{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024},
		}
		cfg.Chains[1].Calls = []Call{
			{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024}, // cross-tenant
			{Callee: "a-back", ReqBytes: 1024, RespBytes: 1024}, // cross-tenant
		}
		return cfg
	}
	measure := func(chain string) time.Duration {
		c := NewCluster(mkCfg())
		defer c.Eng.Stop()
		driveChains(t, c, map[string]int{chain: 1}, 150*time.Millisecond)
		if c.ChainLatency[chain].Count() == 0 {
			t.Fatalf("chain %s did not complete", chain)
		}
		return c.ChainLatency[chain].Mean()
	}
	same := measure("a-chain")
	cross := measure("b-chain")
	if cross <= same {
		t.Fatalf("cross-tenant chain (%v) not slower than same-tenant twin (%v)", cross, same)
	}
	// The penalty is the copies, not a different transport: small.
	if cross > same*2 {
		t.Fatalf("cross-tenant penalty implausibly large: %v vs %v", cross, same)
	}
}

func TestTenantPoolsAreIsolated(t *testing.T) {
	c := NewCluster(multiTenantConfig(NadinoDNE))
	defer c.Eng.Stop()
	n := c.nodes["node1"]
	if n.pool("tenant_a") == n.pool("tenant_b") {
		t.Fatal("tenants share a pool")
	}
	// The registry rejects cross-tenant attachment.
	if _, err := n.reg.Attach("tenant_a", "tenant_b"); err == nil {
		t.Fatal("registry allowed cross-tenant attach")
	}
	if n.reg.TotalHugepages() == 0 {
		t.Fatal("no hugepages accounted")
	}
}
