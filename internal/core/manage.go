package core

import (
	"fmt"

	"nadino/internal/fabric"
	"nadino/internal/flightrec"
)

// This file is the cluster's management surface: the handful of mutations a
// live control plane (nadino-svc's /api/v1 endpoints) applies to a running
// cluster — attaching the flight recorder, re-weighting tenants, and
// overriding routes. Everything here must be called in engine context (the
// daemon calls through its pacer's Do).

// Ready reports whether setup (QP establishment, engine start) finished —
// the daemon's /readyz signal. Safe to call from engine context at any
// time.
func (c *Cluster) Ready() bool { return c.isReady }

// AttachFlightRecorder wires rec into every hook point the cluster owns:
// the ingress gateway, each node's network engine and gateway tier, and
// every RC connection pool that exists at call time. Connection pools are
// created during setup, so attach after WaitReady (or Ready) for QP
// error/repair coverage; the other hooks wire regardless.
func (c *Cluster) AttachFlightRecorder(rec *flightrec.Recorder) {
	if c.gw != nil {
		c.gw.SetFlightRecorder(rec)
	}
	for _, n := range c.nodeSeq {
		ns := string(n.name)
		if n.engine != nil {
			n.engine.SetFlightRecorder(rec)
			for _, cp := range n.engine.ConnPools() {
				cp.SetFlightRecorder(rec, "qp:"+cp.Tenant+"@"+ns)
			}
		}
		if n.gw != nil {
			n.gw.SetFlightRecorder(rec)
			for _, cp := range n.gw.Links() {
				cp.SetFlightRecorder(rec, "gw-qp:"+cp.Tenant+"@"+ns)
			}
		}
	}
}

// SetTenantWeight re-weights a tenant's scheduler share on every node
// engine at runtime — the hot-reload path behind the management API's
// tenant update. Reports whether any engine knew the tenant.
func (c *Cluster) SetTenantWeight(tenant string, weight int) bool {
	if weight <= 0 {
		return false
	}
	found := false
	for _, n := range c.nodeSeq {
		if n.engine != nil && n.engine.SetTenantWeight(tenant, weight) {
			found = true
		}
	}
	if found {
		for i := range c.tenants {
			if c.tenants[i].Name == tenant {
				c.tenants[i].Weight = weight
			}
		}
	}
	return found
}

// Reroute points every engine's and gateway's route for logical function fn
// at node — a placement override, the control-plane half of a migration.
// It is honest about what it does NOT do: no instance is moved, so steering
// fn at a node that hosts no instance of it makes the DNE drop deliveries
// as no-port (visible in the flight recorder), exactly like a real route
// pushed ahead of its pod. It therefore refuses nodes that host no instance
// of fn unless force is set.
func (c *Cluster) Reroute(fn, node string, force bool) error {
	target, ok := c.nodes[node]
	if !ok {
		return fmt.Errorf("core: unknown node %q", node)
	}
	known := false
	hosted := false
	for _, f := range c.fnSeq {
		if f.spec.Name == fn || f.name == fn {
			known = true
			if f.node == target {
				hosted = true
			}
		}
	}
	if !known {
		return fmt.Errorf("core: unknown function %q", fn)
	}
	if !hosted && !force {
		return fmt.Errorf("core: node %q hosts no instance of %q (force to steer anyway)", node, fn)
	}
	for _, n := range c.nodeSeq {
		if n.engine != nil {
			n.engine.SetRoute(fn, fabric.NodeID(node))
		}
		if n.gw != nil {
			n.gw.Routes().Set(fn, fabric.NodeID(node))
		}
	}
	return nil
}

// TenantWeights reports the declared tenants and their current weights in
// declaration order (the management API's GET view).
func (c *Cluster) TenantWeights() []TenantSpec {
	out := make([]TenantSpec, len(c.tenants))
	copy(out, c.tenants)
	return out
}
