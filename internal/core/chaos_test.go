package core

import (
	"testing"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// TestClusterChaosTargets drives the full NADINO stack through a mixed
// fault schedule built from the standard cluster targets: a node blip, a
// SoC DMA stall, a forced-QP-error round, and an ingress restart. The
// cluster must keep completing chains after everything clears, and the
// fault surfaces must each report they were hit.
func TestClusterChaosTargets(t *testing.T) {
	c := NewCluster(testConfig(NadinoDNE))
	t.Cleanup(c.Eng.Stop)
	in := c.NewChaos(1)

	base := c.P.QPSetupTime
	in.Install(chaos.Schedule{
		{At: base + 5*time.Millisecond, For: 2 * time.Millisecond, Fault: chaos.NodeDown{Node: "node2"}},
		{At: base + 20*time.Millisecond, For: 3 * time.Millisecond, Fault: chaos.DMAStall{Target: "dma@node1"}},
		{At: base + 30*time.Millisecond, Fault: chaos.QPError{Target: "qp@node1", Count: 1}},
		{At: base + 40*time.Millisecond, For: 2 * time.Millisecond, Fault: chaos.GatewayRestart{Target: "ingress"}},
		{At: base + 60*time.Millisecond, For: 5 * time.Millisecond, Fault: chaos.SlowCores{Target: "cores@node2", Factor: 0.5}},
	})

	for i := 0; i < 4; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("mix", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(300 * time.Millisecond)

	if done := c.Completed.Total(); done < 100 {
		t.Fatalf("completed only %d requests under faults", done)
	}
	if in.Applied() != 5 {
		t.Fatalf("applied %d faults, want 5", in.Applied())
	}
	// NodeDown and SlowCores revert; the other three are apply-only.
	if in.Reverted() != 2 {
		t.Fatalf("reverted %d faults, want 2", in.Reverted())
	}
	if c.Net().Drops() == 0 {
		t.Fatal("node blip dropped nothing")
	}
	_, _, drops := c.Net().LinkStats("node1")
	if drops == 0 {
		t.Fatal("node1 egress recorded no drops during the blip")
	}
	// The DMA stall only bites in on-path mode; the injector must still have
	// reached the engine.
	var stalled time.Duration
	for _, n := range c.nodeSeq {
		stalled += n.dpu.SoCDMA().StallTime()
	}
	if stalled != 3*time.Millisecond {
		t.Fatalf("stall time %v, want 3ms", stalled)
	}
	if c.Gateway().InjectedRestarts() != 1 {
		t.Fatalf("gateway restarts = %d, want 1", c.Gateway().InjectedRestarts())
	}
	// The forced QP error was repaired by the keeper loop.
	var repairs uint64
	for _, cp := range c.Engine("node1").ConnPools() {
		repairs += cp.Repairs()
	}
	if repairs == 0 {
		t.Fatal("forced QP error never repaired")
	}
	for _, cp := range c.Engine("node1").ConnPools() {
		if cp.ErroredCount() != 0 {
			t.Fatal("QP still errored at end of run")
		}
	}
}
