package core

import (
	"fmt"
	"time"
)

// FnGroup is a logical function and its replica set. With MaxScale 1 (the
// default) a group is a single instance and none of this machinery runs;
// with MaxScale > 1 the cluster autoscaler adds and retires instances by
// observed concurrency, the way a serverless platform's autoscaler (Fig. 1)
// drives function density.
type FnGroup struct {
	name      string
	spec      FunctionSpec
	instances []*Function
	// enabled[i] gates routing to instance i (disabled = draining).
	enabled []bool

	scaleUps, scaleDowns uint64
}

// Instances reports the group's current routable instance count.
func (g *FnGroup) Instances() int {
	n := 0
	for _, en := range g.enabled {
		if en {
			n++
		}
	}
	return n
}

// ScaleEvents reports lifetime scale-up and scale-down transitions.
func (g *FnGroup) ScaleEvents() (ups, downs uint64) { return g.scaleUps, g.scaleDowns }

// inflight sums outstanding requests across routable instances.
func (g *FnGroup) inflight() int {
	n := 0
	for i, f := range g.instances {
		if g.enabled[i] {
			n += f.inflight
		}
	}
	return n
}

// pick returns the least-loaded routable instance.
func (g *FnGroup) pick() *Function {
	var best *Function
	for i, f := range g.instances {
		if !g.enabled[i] {
			continue
		}
		if best == nil || f.inflight < best.inflight {
			best = f
		}
	}
	if best == nil {
		// All draining (shouldn't happen: scale-down keeps one enabled);
		// fall back to the first instance.
		return g.instances[0]
	}
	return best
}

// Group returns the replica set for a logical function name.
func (c *Cluster) Group(name string) *FnGroup { return c.groups[name] }

// resolveInstance maps a destination to a concrete instance: logical names
// go through the group's load balancer, instance names (fn@N) and
// unscaled functions pass through directly.
func (c *Cluster) resolveInstance(dst string) *Function {
	if g, ok := c.groups[dst]; ok {
		return g.pick()
	}
	if f, ok := c.fns[dst]; ok {
		return f
	}
	return nil
}

// targetConcurrency is the per-instance concurrency the autoscaler aims at.
func (g *FnGroup) targetConcurrency() int {
	if g.spec.TargetConcurrency > 0 {
		return g.spec.TargetConcurrency
	}
	if g.spec.Workers > 0 {
		return g.spec.Workers
	}
	return 8
}

// startAutoscaler runs the per-group scaling loop.
func (c *Cluster) startAutoscaler(g *FnGroup) {
	interval := c.cfg.AutoscaleEvery
	if interval == 0 {
		interval = 5 * time.Millisecond
	}
	c.Eng.Ticker(interval, func(now time.Duration) {
		target := g.targetConcurrency()
		routable := g.Instances()
		load := g.inflight()
		switch {
		case load > target*routable && len(g.instances) >= routable:
			c.scaleUp(g)
		case routable > 1 && load < target*(routable-1)/2:
			c.scaleDown(g)
		}
	})
}

// scaleUp re-enables a drained instance or boots a new one (up to
// MaxScale), placing it round-robin across the worker nodes.
func (c *Cluster) scaleUp(g *FnGroup) {
	for i := range g.instances {
		if !g.enabled[i] {
			g.enabled[i] = true
			g.scaleUps++
			return
		}
	}
	if len(g.instances) >= g.spec.MaxScale {
		return
	}
	spec := g.spec
	spec.Name = fmt.Sprintf("%s@%d", g.name, len(g.instances)+1)
	nodes := c.cfg.Nodes
	if c.cfg.System.SingleNode() {
		nodes = nodes[:1]
	}
	spec.Node = nodes[len(g.instances)%len(nodes)]
	inst := c.addFunction(spec)
	inst.group = g
	// New containers boot cold: force the first request on every worker
	// to pay the cold start (zero KeepWarm history).
	c.installRoutes(inst)
	c.startFunction(inst)
	g.instances = append(g.instances, inst)
	g.enabled = append(g.enabled, true)
	g.scaleUps++
}

// scaleDown drains the most recently added routable instance (never the
// first): it stops receiving new requests and finishes what it holds.
func (c *Cluster) scaleDown(g *FnGroup) {
	for i := len(g.instances) - 1; i >= 1; i-- {
		if g.enabled[i] {
			g.enabled[i] = false
			g.scaleDowns++
			return
		}
	}
}

// installRoutes registers a (new) instance with every network engine.
func (c *Cluster) installRoutes(f *Function) {
	for _, n := range c.nodeSeq {
		if n.engine != nil {
			n.engine.SetRoute(f.name, f.node.name)
		}
	}
}
