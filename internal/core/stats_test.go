package core

import (
	"testing"
	"time"
)

// TestNetCPUStatsNadinoDNE checks the §4.3.1 accounting on the NADINO DNE
// data plane: one pinned (DPU) engine core per node, a useful-work fraction
// bounded by the pinned capacity, and a positive function-core share.
func TestNetCPUStatsNadinoDNE(t *testing.T) {
	c, done := runChainLoad(t, NadinoDNE, 4, 100*time.Millisecond)
	if done == 0 {
		t.Fatal("no requests completed")
	}
	elapsed := c.Eng.Now()
	s := c.NetCPUStats(elapsed)
	if !s.OnDPU {
		t.Error("NADINO DNE pinned cores should be reported as DPU cores")
	}
	if s.PinnedCores != 2 {
		t.Errorf("PinnedCores = %v, want 2 (one DNE worker core per node)", s.PinnedCores)
	}
	if s.PinnedUseful <= 0 || s.PinnedUseful > s.PinnedCores {
		t.Errorf("PinnedUseful = %v, want in (0, %v]", s.PinnedUseful, s.PinnedCores)
	}
	if s.FnCores <= 0 {
		t.Errorf("FnCores = %v, want > 0 (stack/IPC work on function cores)", s.FnCores)
	}
	if got := s.Total(); got != s.PinnedCores+s.FnCores {
		t.Errorf("Total() = %v, want PinnedCores+FnCores = %v", got, s.PinnedCores+s.FnCores)
	}
}

// TestNetCPUStatsFuyao checks the FUYAO accounting: engine + receiver poller
// make two pinned host cores per node.
func TestNetCPUStatsFuyao(t *testing.T) {
	c, done := runChainLoad(t, FuyaoF, 4, 100*time.Millisecond)
	if done == 0 {
		t.Fatal("no requests completed")
	}
	s := c.NetCPUStats(c.Eng.Now())
	if s.OnDPU {
		t.Error("FUYAO pinned cores are host cores, not DPU cores")
	}
	if s.PinnedCores != 4 {
		t.Errorf("PinnedCores = %v, want 4 (engine + poller on each of 2 nodes)", s.PinnedCores)
	}
	if s.PinnedUseful <= 0 || s.PinnedUseful > s.PinnedCores {
		t.Errorf("PinnedUseful = %v, want in (0, %v]", s.PinnedUseful, s.PinnedCores)
	}
}

// TestNetCPUStatsJunction checks that Junction's dedicated scheduler core is
// counted as fully consumed (busy-polling pins it regardless of load).
func TestNetCPUStatsJunction(t *testing.T) {
	c, done := runChainLoad(t, Junction, 4, 100*time.Millisecond)
	if done == 0 {
		t.Fatal("no requests completed")
	}
	s := c.NetCPUStats(c.Eng.Now())
	if s.PinnedCores != 2 {
		t.Errorf("PinnedCores = %v, want 2 (one scheduler core per node)", s.PinnedCores)
	}
	if s.PinnedUseful != s.PinnedCores {
		t.Errorf("PinnedUseful = %v, want %v (scheduler core counts fully)", s.PinnedUseful, s.PinnedCores)
	}
}

// TestNetCPUStatsZeroElapsed: a non-positive window must yield the zero
// value rather than dividing by zero.
func TestNetCPUStatsZeroElapsed(t *testing.T) {
	c, _ := runChainLoad(t, NadinoDNE, 1, 20*time.Millisecond)
	for _, elapsed := range []time.Duration{0, -time.Second} {
		s := c.NetCPUStats(elapsed)
		if s != (NetCPU{}) {
			t.Errorf("NetCPUStats(%v) = %+v, want zero value", elapsed, s)
		}
		if got := c.AppCPUCores(elapsed); got != 0 {
			t.Errorf("AppCPUCores(%v) = %v, want 0", elapsed, got)
		}
	}
}

// TestNetCPUStatsNegativeNetClamped: if accounted application compute ever
// exceeds measured function-core busy time (possible at window edges, where
// appBusy is charged up front but the core drains later), the data-plane
// share must clamp to zero instead of going negative.
func TestNetCPUStatsNegativeNetClamped(t *testing.T) {
	c, done := runChainLoad(t, NadinoDNE, 2, 50*time.Millisecond)
	if done == 0 {
		t.Fatal("no requests completed")
	}
	// Force the inconsistent edge case directly.
	c.appBusy += time.Hour
	s := c.NetCPUStats(c.Eng.Now())
	if s.FnCores != 0 {
		t.Errorf("FnCores = %v, want 0 when appBusy exceeds function-core busy time", s.FnCores)
	}
}

// TestAppCPUCoresAndFnUtilization covers the per-function utilization map:
// every deployed function appears, utilizations are sane, and application
// compute is positive under load.
func TestAppCPUCoresAndFnUtilization(t *testing.T) {
	c, done := runChainLoad(t, NadinoDNE, 4, 100*time.Millisecond)
	if done == 0 {
		t.Fatal("no requests completed")
	}
	elapsed := c.Eng.Now()
	if app := c.AppCPUCores(elapsed); app <= 0 {
		t.Errorf("AppCPUCores = %v, want > 0 under load", app)
	}
	util := c.FnUtilization(elapsed)
	for _, name := range []string{"frontend", "backend", "sibling"} {
		u, ok := util[name]
		if !ok {
			t.Errorf("FnUtilization missing function %q", name)
			continue
		}
		if u < 0 || u > 1 {
			t.Errorf("FnUtilization[%q] = %v, want within [0, 1]", name, u)
		}
	}
	if len(util) != len(c.fns) {
		t.Errorf("FnUtilization has %d entries, want %d", len(util), len(c.fns))
	}
}
