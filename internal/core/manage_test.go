package core

import (
	"testing"
	"time"

	"nadino/internal/flightrec"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// TestManageSurface exercises the live-management API against a running
// NADINO cluster: readiness, tenant re-weighting, route overrides, and the
// flight-recorder attachment points.
func TestManageSurface(t *testing.T) {
	cfg := testConfig(NadinoDNE)
	cfg.Tenants = []TenantSpec{{Name: "gold", Weight: 4}}
	c := NewCluster(cfg)
	t.Cleanup(c.Eng.Stop)

	if c.Ready() {
		t.Fatal("cluster reports ready before setup ran")
	}
	c.Eng.RunUntil(50 * time.Millisecond)
	if !c.Ready() {
		t.Fatal("cluster not ready after 50ms of setup time")
	}

	rec := flightrec.New(256, c.Eng.Now)
	c.AttachFlightRecorder(rec)

	// Tenant re-weighting: known tenants on every engine, unknown refused.
	if !c.SetTenantWeight("gold", 9) {
		t.Fatal("SetTenantWeight refused a declared tenant")
	}
	if c.SetTenantWeight("no-such-tenant", 3) {
		t.Fatal("SetTenantWeight accepted an unknown tenant")
	}
	if c.SetTenantWeight("gold", 0) {
		t.Fatal("SetTenantWeight accepted a non-positive weight")
	}
	var got int
	for _, ts := range c.TenantWeights() {
		if ts.Name == "gold" {
			got = ts.Weight
		}
	}
	if got != 9 {
		t.Fatalf("TenantWeights reports gold=%d, want 9", got)
	}

	// Route overrides: unknown names refused, un-hosted nodes refused
	// without force, hosted placement accepted.
	if err := c.Reroute("no-such-fn", "node1", false); err == nil {
		t.Fatal("Reroute accepted an unknown function")
	}
	if err := c.Reroute("backend", "no-such-node", false); err == nil {
		t.Fatal("Reroute accepted an unknown node")
	}
	if err := c.Reroute("backend", "node1", false); err == nil {
		t.Fatal("Reroute steered to a node hosting no instance without force")
	}
	if err := c.Reroute("backend", "node2", false); err != nil {
		t.Fatalf("Reroute refused the hosting node: %v", err)
	}

	// The cluster still serves traffic after the management calls, and a
	// forced mis-route shows up in the flight recorder as DNE drops (the
	// exact kind depends on where the descriptor dies: no QP pool toward
	// the bogus placement is no-route, landing without a port is no-port).
	respQ := sim.NewQueue[ingress.Response](c.Eng, 16)
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		for i := 0; i < 20; i++ {
			c.SubmitChain("mix", 1, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
		}
		if err := c.Reroute("backend", "node1", true); err != nil {
			t.Errorf("forced Reroute failed: %v", err)
		}
		for i := 0; i < 5; i++ {
			c.SubmitChain("mix", 1, func(r ingress.Response) { respQ.TryPut(r) })
			pr.Sleep(2 * time.Millisecond)
		}
	})
	c.Eng.RunUntil(400 * time.Millisecond)

	if c.Completed.Total() < 20 {
		t.Fatalf("completed %d chains, want >= 20", c.Completed.Total())
	}
	if rec.Last(0) == nil {
		t.Fatal("flight recorder captured nothing")
	}
	found := false
	for _, e := range rec.Snapshot() {
		if e.Kind == flightrec.KindDropNoPort || e.Kind == flightrec.KindDropNoRoute {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("forced mis-route produced no drop events; got %s", flightrec.TextDump(rec, 20))
	}
}
