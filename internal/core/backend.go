package core

import (
	"fmt"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/mempool"
	"nadino/internal/rdma"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// ingressResponse builds a gateway response.
func ingressResponse(bytes int, stamp time.Duration) ingress.Response {
	return ingress.Response{Bytes: bytes, Stamp: stamp}
}

// rqOwner is the owner tag for buffers posted to the ingress backend's SRQ.
const rqOwner mempool.Owner = "igw-rq"

// beTenant is the ingress backend's per-tenant slice: its own pool on the
// ingress node, a shared receive queue, and RC pools toward each worker.
type beTenant struct {
	name  string
	pool  *mempool.Pool
	cache *mempool.Cache // per-consumer cache for the ingress Get/Put churn
	srq   *rdma.SRQ
	conns map[string]*rdma.ConnPool
	rqBuf []mempool.Buffer // batch replenish scratch
	rqDsc []mempool.Descriptor
}

// rdmaBackend is NADINO's cluster side of the ingress gateway: the ingress
// node's RNIC posts two-sided sends straight into worker DNEs (the payload
// enters the tenant pool on the worker — zero copy from there on), and
// worker responses land in the ingress node's per-tenant SRQs.
type rdmaBackend struct {
	c         *Cluster
	rnic      *rdma.RNIC
	cq        *rdma.CQ
	cqeBuf    []rdma.CQE // reusable poll buffer
	tenants   map[string]*beTenant
	tenantSeq []*beTenant // insertion order: map walks are nondeterministic

	drops      uint64
	sendErrors uint64
}

func newRDMABackend(c *Cluster) *rdmaBackend {
	return &rdmaBackend{
		c:       c,
		rnic:    rdma.NewRNIC(c.Eng, c.P, ingressNodeName, c.net),
		cq:      rdma.NewCQ(c.Eng),
		tenants: make(map[string]*beTenant),
	}
}

// tenant returns (creating on first use) the backend slice for a tenant.
func (b *rdmaBackend) tenant(name string) *beTenant {
	t, ok := b.tenants[name]
	if !ok {
		t = &beTenant{
			name:  name,
			pool:  mempool.NewPool(name, b.c.cfg.BufSize, b.c.cfg.PoolBuffers, b.c.P.HugepageSize),
			srq:   rdma.NewSRQ(name),
			conns: make(map[string]*rdma.ConnPool),
			rqBuf: make([]mempool.Buffer, 64),
			rqDsc: make([]mempool.Descriptor, 64),
		}
		t.cache = mempool.NewCache(t.pool, ingressOwner, 64)
		b.tenants[name] = t
		b.tenantSeq = append(b.tenantSeq, t)
	}
	return t
}

// start posts the initial receive rings and spawns the completion poller.
func (b *rdmaBackend) start() {
	for _, t := range b.tenantSeq {
		b.post(t, 1024)
	}
	b.c.Eng.Spawn("ingress-rdma-poller", b.pollLoop)
}

// post posts n receive buffers to a tenant's ingress SRQ, batching the
// pool Gets and the SRQ doorbell.
func (b *rdmaBackend) post(t *beTenant, n int) {
	for n > 0 {
		want := n
		if want > len(t.rqBuf) {
			want = len(t.rqBuf)
		}
		got, _ := t.pool.GetN(rqOwner, t.rqBuf[:want])
		if got == 0 {
			return
		}
		for i := 0; i < got; i++ {
			t.rqDsc[i] = mempool.Descriptor{Tenant: t.name, Buf: t.rqBuf[i]}
		}
		t.srq.PostRecvN(t.rqDsc[:got])
		n -= got
		if got < want {
			return
		}
	}
}

// Forward implements ingress.Backend: inject the request at the chain's
// entry function over two-sided RDMA. The gateway worker already paid the
// conversion costs; this is the wire side. Requests arriving while the
// cluster is still establishing its RC pools wait at the ingress.
func (b *rdmaBackend) Forward(req ingress.Request, done func(ingress.Response)) {
	if !b.c.isReady {
		b.c.Eng.After(time.Millisecond, func() { b.Forward(req, done) })
		return
	}
	spec, ok := b.c.chains[req.Chain]
	if !ok {
		panic(fmt.Sprintf("core: ingress request for unknown chain %q", req.Chain))
	}
	entry := b.c.resolveInstance(spec.Entry)
	t := b.tenant(b.c.chainTenant(spec))
	buf, err := t.cache.Get()
	if err != nil {
		b.drops++
		return
	}
	rc := &reqCtx{
		Chain: req.Chain, Calls: spec.Calls, RespBytes: spec.RespBytes,
		IngressDone: done, Stamp: req.Stamp,
	}
	if req.Group != nil {
		rc.Spec = req.Group.Killed
	}
	d := mempool.Descriptor{
		Tenant: t.name, Buf: buf, Len: req.Bytes,
		Src: "ingress", Dst: entry.name,
		Ctx:   &msgCtx{Kind: kindRequest, Req: rc},
		Trace: req.Trace,
		Spec:  rc.Spec,
	}
	entry.noteInflight()
	cp := t.conns[string(entry.node.name)]
	qp := cp.Pick()
	qp.PostSend(d)
}

// pollLoop drains the ingress CQ: send completions recycle source buffers;
// receive completions are worker responses heading to clients. It also
// replenishes the SRQ to match consumption.
func (b *rdmaBackend) pollLoop(pr *sim.Proc) {
	if b.cqeBuf == nil {
		b.cqeBuf = make([]rdma.CQE, 64)
	}
	for {
		b.cq.Wait(pr)
		for {
			n := b.cq.PollInto(b.cqeBuf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				cqe := b.cqeBuf[i]
				t := b.tenant(cqe.Desc.Tenant)
				switch cqe.Op {
				case rdma.OpSend:
					cqe.Desc.Trace.EndStage(trace.StageRDMAAck)
					if cqe.Status != rdma.StatusOK {
						b.sendErrors++
					}
					if cqe.Desc.Tenant != "" {
						if err := t.cache.Put(cqe.Desc.Buf); err != nil {
							panic(fmt.Sprintf("core: ingress send recycle: %v", err))
						}
					}
				case rdma.OpRecv:
					d := cqe.Desc
					d.Trace.EndStage(trace.StageRDMACQ)
					mc, ok := d.Ctx.(*msgCtx)
					if !ok || mc.IngressDone == nil {
						panic("core: ingress received response without done callback")
					}
					if err := t.pool.Transfer(d.Buf, rqOwner, ingressOwner); err != nil {
						panic(fmt.Sprintf("core: ingress recv ownership: %v", err))
					}
					if err := t.cache.Put(d.Buf); err != nil {
						panic(fmt.Sprintf("core: ingress recv recycle: %v", err))
					}
					mc.IngressDone(ingressResponse(cqe.Bytes, mc.Stamp))
				}
			}
		}
		for _, t := range b.tenantSeq {
			if n := int(t.srq.ConsumedReset()); n > 0 {
				b.post(t, n)
			}
		}
	}
}

// tcpBackend is the cluster side for deferred-conversion systems: the HTTP
// request is proxied over TCP to the entry function's node, which must
// terminate it there (the worker-side costs are charged by the entry
// function's socket receiver).
type tcpBackend struct {
	c *Cluster
}

func newTCPBackend(c *Cluster) *tcpBackend { return &tcpBackend{c: c} }

func (b *tcpBackend) start() {}

// Forward implements ingress.Backend. Requests arriving during cluster
// bring-up wait at the ingress.
func (b *tcpBackend) Forward(req ingress.Request, done func(ingress.Response)) {
	if !b.c.isReady {
		b.c.Eng.After(time.Millisecond, func() { b.Forward(req, done) })
		return
	}
	spec, ok := b.c.chains[req.Chain]
	if !ok {
		panic(fmt.Sprintf("core: ingress request for unknown chain %q", req.Chain))
	}
	entry := b.c.resolveInstance(spec.Entry)
	rc := &reqCtx{
		Chain: req.Chain, Calls: spec.Calls, RespBytes: spec.RespBytes,
		IngressDone: done, Stamp: req.Stamp,
	}
	if req.Group != nil {
		// TCP baselines carry no descriptor through a TX gate, so the
		// only mid-plane kill site is the function's inbox dequeue.
		rc.Spec = req.Group.Killed
	}
	mc := &msgCtx{Kind: kindRequest, Req: rc}
	entry.noteInflight()
	t0 := b.c.Eng.Now()
	b.c.Eng.After(b.c.tcpTransit(b.c.workerStack()), func() {
		req.Trace.Record(trace.StageTransit, "wire", t0, b.c.Eng.Now())
		entry.tcpIn.TryPut(tcpMsg{Bytes: req.Bytes, Src: "ingress", Ctx: mc, Trace: req.Trace})
	})
}
