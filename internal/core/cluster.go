package core

import (
	"fmt"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/dne"
	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/gateway"
	"nadino/internal/ingress"
	"nadino/internal/ipc"
	"nadino/internal/mempool"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
	"nadino/internal/speculate"
	"nadino/internal/trace"
	"nadino/internal/transport"
)

// TenantSpec declares a tenant (in NADINO, a function chain and its
// functions form one tenant, §3.1) and its DWRR weight.
type TenantSpec struct {
	Name   string
	Weight int
}

// Config assembles a cluster for one data-plane system.
type Config struct {
	System System
	// Tenant names the default tenant; functions and chains that leave
	// their Tenant field empty belong to it.
	Tenant string
	// Tenants optionally declares additional tenants with weights. The
	// default tenant is always present.
	Tenants []TenantSpec
	// Nodes lists worker node names; single-node systems use the first.
	Nodes     []string
	Functions []FunctionSpec
	Chains    []ChainSpec

	// PoolBuffers and BufSize dimension each node's unified memory pool.
	PoolBuffers int
	BufSize     int

	// Ingress settings.
	IngressWorkers   int
	IngressAutoScale bool
	IngressMax       int

	// AutoscaleEvery is the function autoscaler's evaluation period
	// (default 5ms of simulated time).
	AutoscaleEvery time.Duration

	// Gateways, on NADINO systems, puts a per-node gateway tier in front of
	// the engines' direct per-tenant QPs: cross-node hops travel as
	// inter-gateway one-sided writes with route-table failover (see
	// internal/gateway). GatewayWindow overrides the per-tenant landing
	// window (0 = params.GwWindow).
	Gateways      bool
	GatewayWindow int

	// Tracer, when non-nil, records a per-stage latency trace for every
	// request submitted through SubmitChain (see internal/trace). A nil
	// tracer keeps the whole path span-free.
	Tracer *trace.Tracer

	// Speculate configures clone-to-N and hedged retries at the ingress
	// (zero value = no speculation); see internal/speculate.
	Speculate speculate.Policy
	// PSCores runs every function core in processor-sharing mode instead
	// of FCFS: concurrent handler work on a core progresses at 1/n speed
	// rather than queueing (the clone-sweep experiments compare both).
	PSCores bool

	Seed int64
}

// ingressNodeName is the fabric name of the dedicated ingress node.
const ingressNodeName = "ingress"

// ingressOwner is the mempool owner used by the ingress RDMA backend.
const ingressOwner mempool.Owner = "ingress-gw"

// Node is one worker node.
type Node struct {
	name fabric.NodeID
	// reg is the node's DPDK-style file-prefix namespace; pools holds one
	// unified memory pool per tenant (§3.4.1).
	reg   *mempool.Registry
	pools map[string]*mempool.Pool
	dpu   *dpu.DPU

	engine *dne.Engine      // NADINO systems
	fuyao  *fuyaoEngine     // FUYAO systems
	gw     *gateway.Gateway // NADINO systems with Config.Gateways

	// schedCore is Junction's dedicated per-node scheduler core (always
	// busy-polling, contributes no packet work).
	schedCore *sim.Processor

	fns []*Function
}

// Function is one deployed function instance with a dedicated core.
type Function struct {
	spec   FunctionSpec
	name   string
	tenant string
	owner  mempool.Owner
	node   *Node
	core   *sim.Processor
	group  *FnGroup
	// inflight counts requests accepted but not yet responded to — the
	// autoscaler's concurrency signal.
	inflight int

	inbox   *sim.Queue[mempool.Descriptor]
	localIn *ipc.SKMsg         // shared-memory systems: local descriptor inbox
	tcpIn   *sim.Queue[tcpMsg] // TCP systems: socket inbox
	port    *dne.FnPort        // NADINO systems
}

// tcpMsg is a message crossing a modeled TCP socket (payload copied, so no
// pool buffer travels with it).
type tcpMsg struct {
	Bytes int
	Src   string
	Ctx   *msgCtx
	Trace *trace.Req
}

// Cluster is the assembled system under test.
type Cluster struct {
	Eng *sim.Engine
	P   *params.Params
	cfg Config

	net     *fabric.Network
	nodes   map[string]*Node
	nodeSeq []*Node
	fns     map[string]*Function
	fnSeq   []*Function // declaration order: map walks are nondeterministic
	groups  map[string]*FnGroup
	chains  map[string]*ChainSpec
	tenants []TenantSpec
	// crossTenantCopies counts sidecar-enforced copies between tenants.
	crossTenantCopies uint64
	// coldStarts counts container boots paid by idle handlers.
	coldStarts uint64
	// specFnKills counts speculative clones killed at a function's inbox
	// dequeue (the deepest core-side cancellation point).
	specFnKills uint64

	gw      *ingress.Gateway
	tracer  *trace.Tracer
	rdmaBE  *rdmaBackend
	tcpBE   *tcpBackend
	ready   *sim.Queue[struct{}]
	isReady bool

	// appBusy accumulates pure application compute charged to function
	// cores; (total fn core busy - appBusy) is data-plane CPU (§4.3.1).
	appBusy time.Duration

	// Latency and completion accounting per chain.
	ChainLatency map[string]*metrics.Hist
	Completed    *metrics.Meter
}

// NewCluster builds and wires the whole system; the returned cluster's
// engine still needs Run. Call WaitReady from a process (or just start
// clients — requests queue behind connection setup).
func NewCluster(cfg Config) *Cluster {
	if cfg.Tenant == "" {
		cfg.Tenant = "tenant_1"
	}
	tenants := []TenantSpec{{Name: cfg.Tenant, Weight: 1}}
	for _, ts := range cfg.Tenants {
		if ts.Name == cfg.Tenant {
			tenants[0].Weight = ts.Weight
			continue
		}
		if ts.Weight <= 0 {
			ts.Weight = 1
		}
		tenants = append(tenants, ts)
	}
	if cfg.PoolBuffers == 0 {
		cfg.PoolBuffers = 16384
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = 8192
	}
	if cfg.IngressWorkers == 0 {
		cfg.IngressWorkers = 1
	}
	if cfg.IngressMax == 0 {
		cfg.IngressMax = cfg.IngressWorkers
	}
	if len(cfg.Nodes) == 0 {
		panic("core: cluster needs at least one node")
	}
	p := params.Default()
	eng := sim.NewEngine(cfg.Seed)
	c := &Cluster{
		Eng:          eng,
		P:            p,
		cfg:          cfg,
		net:          fabric.New(eng, p),
		nodes:        make(map[string]*Node),
		fns:          make(map[string]*Function),
		groups:       make(map[string]*FnGroup),
		chains:       make(map[string]*ChainSpec),
		ready:        sim.NewQueue[struct{}](eng, 0),
		ChainLatency: make(map[string]*metrics.Hist),
		Completed:    metrics.NewMeter(),
	}
	c.tenants = tenants
	c.tracer = cfg.Tracer
	c.tracer.SetClock(eng.Now)
	for i := range cfg.Chains {
		ch := cfg.Chains[i]
		c.chains[ch.Name] = &ch
		c.ChainLatency[ch.Name] = metrics.NewHist()
	}

	nodeNames := cfg.Nodes
	if cfg.System.SingleNode() {
		nodeNames = cfg.Nodes[:1]
	}
	for _, name := range nodeNames {
		c.addNode(name)
	}
	for _, fs := range cfg.Functions {
		logical := fs.Name
		if fs.MaxScale > 1 {
			// Scalable functions get instance-suffixed names so the
			// logical name unambiguously addresses the load balancer.
			fs.Name = logical + "@1"
		}
		f := c.addFunction(fs)
		spec := fs
		spec.Name = logical
		g := &FnGroup{name: logical, spec: spec, instances: []*Function{f}, enabled: []bool{true}}
		f.group = g
		c.groups[logical] = g
		if fs.MaxScale > 1 {
			c.startAutoscaler(g)
		}
	}
	c.buildIngress()
	eng.Spawn("cluster-setup", c.setup)
	return c
}

func (c *Cluster) addNode(name string) {
	n := &Node{
		name:  fabric.NodeID(name),
		reg:   mempool.NewRegistry(name),
		pools: make(map[string]*mempool.Pool),
		dpu:   dpu.New(c.Eng, c.P, fabric.NodeID(name), c.net, 2),
	}
	// Each tenant's shared-memory agent creates its pool under its own
	// file-prefix (§3.4.1).
	for _, ts := range c.tenants {
		pool, err := n.reg.CreatePool(ts.Name, c.cfg.BufSize, c.cfg.PoolBuffers, c.P.HugepageSize)
		if err != nil {
			panic(err)
		}
		n.pools[ts.Name] = pool
	}
	switch c.cfg.System {
	case NadinoDNE:
		n.engine = dne.New(c.Eng, c.P, dne.Config{
			Node: n.name, Mode: dne.OffPath, Loc: dne.OnDPU,
			Sched: dne.SchedDWRR, Channel: dpu.ComchE,
		}, n.dpu, nil, nil)
	case NadinoCNE:
		worker := sim.NewProcessor(c.Eng, name+"/cne", c.P.HostCoreSpeed)
		keeper := sim.NewProcessor(c.Eng, name+"/cne-k", c.P.HostCoreSpeed)
		n.engine = dne.New(c.Eng, c.P, dne.Config{
			Node: n.name, Mode: dne.OffPath, Loc: dne.OnCPU,
			Sched: dne.SchedDWRR,
		}, n.dpu, worker, keeper)
	case FuyaoF, FuyaoK:
		n.fuyao = newFuyaoEngine(c, n)
	case Junction:
		n.schedCore = sim.NewProcessor(c.Eng, name+"/junction-sched", c.P.HostCoreSpeed)
	}
	if n.engine != nil {
		for _, ts := range c.tenants {
			n.engine.AddTenant(ts.Name, n.pools[ts.Name], ts.Weight)
		}
	}
	if n.engine != nil && c.cfg.Gateways {
		n.gw = gateway.New(c.Eng, c.P, n.name, c.net, n.dpu.RNIC(), c.cfg.GatewayWindow)
		for _, ts := range c.tenants {
			n.gw.AddTenant(ts.Name, n.pools[ts.Name])
		}
		n.gw.SetEgress(n.engine)
		n.engine.SetForwarder(n.gw, n.gw.Owner())
	}
	c.nodes[name] = n
	c.nodeSeq = append(c.nodeSeq, n)
}

// pool returns node n's unified memory pool for tenant.
func (n *Node) pool(tenant string) *mempool.Pool { return n.pools[tenant] }

// noteInflight counts an ingress-originated request against the instance.
func (f *Function) noteInflight() { f.inflight++ }

func (c *Cluster) addFunction(fs FunctionSpec) *Function {
	if fs.Workers == 0 {
		fs.Workers = 8
	}
	nodeName := fs.Node
	if c.cfg.System.SingleNode() {
		nodeName = c.cfg.Nodes[0]
	}
	n, ok := c.nodes[nodeName]
	if !ok {
		panic(fmt.Sprintf("core: function %q placed on unknown node %q", fs.Name, fs.Node))
	}
	tenant := fs.Tenant
	if tenant == "" {
		tenant = c.cfg.Tenant
	}
	disc := sim.FCFS
	if c.cfg.PSCores {
		disc = sim.PS
	}
	f := &Function{
		spec:   fs,
		name:   fs.Name,
		tenant: tenant,
		owner:  mempool.Owner(fs.Name),
		node:   n,
		core:   sim.NewProcessorDisc(c.Eng, nodeName+"/"+fs.Name, c.P.HostCoreSpeed, disc),
		inbox:  sim.NewQueue[mempool.Descriptor](c.Eng, 0),
	}
	// The function maps its tenant's pool as a DPDK secondary process; the
	// registry rejects cross-tenant attachment (§3.4.1).
	if _, err := n.reg.Attach(tenant, tenant); err != nil {
		panic(err)
	}
	switch c.cfg.System {
	case NadinoDNE, NadinoCNE:
		f.localIn = ipc.NewSKMsg(c.Eng, c.P, nil)
		f.port = n.engine.AttachFunction(f.name, tenant)
	case FuyaoF, FuyaoK, Spright, NightCore:
		f.localIn = ipc.NewSKMsg(c.Eng, c.P, nil)
		if c.cfg.System == Spright {
			f.tcpIn = sim.NewQueue[tcpMsg](c.Eng, 0)
		}
	case Junction:
		f.tcpIn = sim.NewQueue[tcpMsg](c.Eng, 0)
	}
	// Deferred-conversion systems terminate ingress TCP on the worker:
	// give every potential entry function a socket inbox.
	if c.cfg.System != NadinoDNE && c.cfg.System != NadinoCNE && f.tcpIn == nil {
		f.tcpIn = sim.NewQueue[tcpMsg](c.Eng, 0)
	}
	n.fns = append(n.fns, f)
	c.fns[f.name] = f
	c.fnSeq = append(c.fnSeq, f)
	return f
}

// workerStack is the TCP stack terminating at worker nodes for
// deferred-conversion systems.
func (c *Cluster) workerStack() transport.Stack {
	switch c.cfg.System {
	case FuyaoK, NightCore:
		return transport.Kernel
	case Junction:
		return transport.Junction
	default:
		return transport.FStack
	}
}

func (c *Cluster) buildIngress() {
	kind := c.cfg.System.IngressKind()
	var backend ingress.Backend
	if kind == ingress.Nadino {
		c.rdmaBE = newRDMABackend(c)
		backend = c.rdmaBE
	} else {
		c.tcpBE = newTCPBackend(c)
		backend = c.tcpBE
	}
	icfg := ingress.Config{
		Kind:           kind,
		InitialWorkers: c.cfg.IngressWorkers,
		MaxWorkers:     c.cfg.IngressMax,
		AutoScale:      c.cfg.IngressAutoScale,
		Speculate:      c.cfg.Speculate,
	}
	if c.cfg.System == NightCore {
		// NightCore's built-in kernel gateway is a single-threaded HTTP
		// dispatcher inside its engine, substantially heavier than tuned
		// NGINX; calibrated against Table 2.
		icfg.ExtraPerRequest = 140 * time.Microsecond
		icfg.InitialWorkers, icfg.MaxWorkers = 1, 1
	}
	if c.cfg.System == FuyaoK {
		// The kernel NGINX ingress runs pinned to one core, as in the
		// §4.1.3 setup.
		icfg.InitialWorkers, icfg.MaxWorkers = 1, 1
	}
	c.gw = ingress.New(c.Eng, c.P, icfg, backend)
}

// chainTenant resolves a chain's owning tenant.
func (c *Cluster) chainTenant(spec *ChainSpec) string {
	if spec.Tenant != "" {
		return spec.Tenant
	}
	return c.cfg.Tenant
}

// SetTracer installs (or, with nil, removes) the request tracer at runtime;
// callers use it to start tracing only after a warmup window.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	tr.SetClock(c.Eng.Now)
	c.tracer = tr
}

// CrossTenantCopies reports sidecar-enforced copies between tenants.
func (c *Cluster) CrossTenantCopies() uint64 { return c.crossTenantCopies }

// ColdStarts reports container boots paid by idle handlers.
func (c *Cluster) ColdStarts() uint64 { return c.coldStarts }

// SpecFnKills reports speculative clones killed at function dequeue.
func (c *Cluster) SpecFnKills() uint64 { return c.specFnKills }

// Gateway returns the cluster ingress.
func (c *Cluster) Gateway() *ingress.Gateway { return c.gw }

// Engine returns node's network engine (NADINO systems).
func (c *Cluster) Engine(node string) *dne.Engine { return c.nodes[node].engine }

// NodeGateway returns node's gateway tier (nil unless Config.Gateways).
func (c *Cluster) NodeGateway(node string) *gateway.Gateway { return c.nodes[node].gw }

// Gateways returns every node gateway in node order (empty unless
// Config.Gateways).
func (c *Cluster) Gateways() []*gateway.Gateway {
	var out []*gateway.Gateway
	for _, n := range c.nodeSeq {
		if n.gw != nil {
			out = append(out, n.gw)
		}
	}
	return out
}

// Net returns the cluster fabric (chaos injection and stats).
func (c *Cluster) Net() *fabric.Network { return c.net }

// NewChaos builds a fault injector over the whole cluster with every
// standard target registered: the gateway as "ingress", and per node the
// SoC DMA as "dma@<node>", the DPU ARM cores as "cores@<node>", and the
// node engine's RC connection pools as "qp@<node>" (a lazy provider —
// pools only exist once setup completes). Non-NADINO systems register no
// QP targets for nodes without an engine.
func (c *Cluster) NewChaos(seed int64) *chaos.Injector {
	in := chaos.NewInjector(c.Eng, c.net, seed)
	in.RegisterGateway("ingress", c.gw)
	for _, n := range c.nodeSeq {
		node := n
		in.RegisterStaller("dma@"+string(node.name), node.dpu.SoCDMA())
		in.RegisterCores("cores@"+string(node.name), node.dpu.Cores()...)
		if node.engine != nil {
			in.RegisterQPs("qp@"+string(node.name), func() []chaos.QPErrorTarget {
				pools := node.engine.ConnPools()
				ts := make([]chaos.QPErrorTarget, len(pools))
				for i, cp := range pools {
					ts[i] = cp
				}
				return ts
			})
		}
		if node.gw != nil {
			g := node.gw
			in.RegisterQPs("gw-qp@"+string(node.name), func() []chaos.QPErrorTarget {
				pools := g.Links()
				ts := make([]chaos.QPErrorTarget, len(pools))
				for i, cp := range pools {
					ts[i] = cp
				}
				return ts
			})
			in.RegisterCores("gw-cores@"+string(node.name), g.Core())
		}
	}
	return in
}

// setup establishes RC connections, starts engines, backends and function
// runtimes, then signals readiness.
func (c *Cluster) setup(pr *sim.Proc) {
	switch c.cfg.System {
	case NadinoDNE, NadinoCNE:
		c.setupNadino(pr)
	case FuyaoF, FuyaoK:
		c.setupFuyao(pr)
	}
	if c.tcpBE != nil {
		c.tcpBE.start()
	}
	for _, f := range c.fnSeq {
		c.startFunction(f)
	}
	c.isReady = true
	c.ready.TryPut(struct{}{})
}

func (c *Cluster) setupNadino(pr *sim.Proc) {
	// Routes: every engine knows where every function lives, plus the
	// ingress pseudo-destination.
	for _, n := range c.nodeSeq {
		for _, f := range c.fnSeq {
			n.engine.SetRoute(f.name, f.node.name)
			if n.gw != nil {
				n.gw.Routes().Set(f.name, f.node.name)
			}
		}
		n.engine.SetRoute("ingress", ingressNodeName)
	}
	// Establish all RC pools concurrently: the DNEs bring connections up
	// in parallel at deployment, so setup costs one handshake, not one per
	// node pair or tenant.
	done := sim.NewQueue[struct{}](c.Eng, 0)
	jobs := 0
	for _, ts := range c.tenants {
		tenant := ts.Name
		for i := 0; i < len(c.nodeSeq); i++ {
			for j := i + 1; j < len(c.nodeSeq); j++ {
				a, b := c.nodeSeq[i], c.nodeSeq[j]
				jobs++
				c.Eng.Spawn("setup-pair", func(spr *sim.Proc) {
					cpA, cpB := rdma.EstablishPair(spr, c.P, tenant,
						a.dpu.RNIC(), b.dpu.RNIC(), 8,
						a.engine.SRQ(tenant), b.engine.SRQ(tenant),
						a.engine.CQ(), b.engine.CQ())
					a.engine.AddConnPool(b.name, tenant, cpA)
					b.engine.AddConnPool(a.name, tenant, cpB)
					done.TryPut(struct{}{})
				})
			}
		}
		for _, n := range c.nodeSeq {
			n := n
			jobs++
			c.Eng.Spawn("setup-ingress", func(spr *sim.Proc) {
				be := c.rdmaBE.tenant(tenant)
				cpW, cpI := rdma.EstablishPair(spr, c.P, tenant,
					n.dpu.RNIC(), c.rdmaBE.rnic, 8,
					n.engine.SRQ(tenant), be.srq,
					n.engine.CQ(), c.rdmaBE.cq)
				n.engine.AddConnPool(ingressNodeName, tenant, cpW)
				be.conns[string(n.name)] = cpI
				done.TryPut(struct{}{})
			})
		}
	}
	// Inter-gateway QP pools come up alongside: one pool per node pair,
	// shared by all tenants (the landing window, not the QP, is per-tenant).
	if c.cfg.Gateways {
		for i := 0; i < len(c.nodeSeq); i++ {
			for j := i + 1; j < len(c.nodeSeq); j++ {
				a, b := c.nodeSeq[i], c.nodeSeq[j]
				if a.gw == nil || b.gw == nil {
					continue
				}
				jobs++
				c.Eng.Spawn("setup-gw-pair", func(spr *sim.Proc) {
					gateway.Connect(spr, a.gw, b.gw, 4)
					done.TryPut(struct{}{})
				})
			}
		}
	}
	for i := 0; i < jobs; i++ {
		done.Get(pr)
	}
	for _, n := range c.nodeSeq {
		n.engine.Start()
		if n.gw != nil {
			n.gw.Start()
		}
	}
	c.rdmaBE.start()
}

// startFunction spawns the function's receiver procs and workers.
func (c *Cluster) startFunction(f *Function) {
	if f.port != nil {
		c.Eng.Spawn(f.name+"/port-rx", func(pr *sim.Proc) {
			for {
				d := f.port.Recv(pr, f.core)
				c.deliver(pr, f, d)
			}
		})
	}
	if f.localIn != nil {
		c.Eng.Spawn(f.name+"/shm-rx", func(pr *sim.Proc) {
			for {
				d := f.localIn.Recv(pr)
				sp := d.Trace.Begin(trace.StageFnDeliver, f.name)
				f.core.Exec(pr, f.localIn.WakeupCost()+c.P.SemTokenCost)
				sp.End()
				c.deliver(pr, f, d)
			}
		})
	}
	if f.tcpIn != nil {
		st := c.workerStack()
		c.Eng.Spawn(f.name+"/tcp-rx", func(pr *sim.Proc) {
			for {
				m := f.tcpIn.Get(pr)
				sp := m.Trace.Begin(st.TraceStage(), f.name)
				f.core.Exec(pr, transport.RecvCost(c.P, st, m.Bytes))
				sp.End()
				// The payload is copied out of the socket into a fresh
				// local buffer.
				buf, err := c.getBufferRetry(pr, f.node.pool(f.tenant), f.owner)
				if err != nil {
					continue
				}
				d := mempool.Descriptor{
					Tenant: f.tenant, Buf: buf, Len: m.Bytes,
					Src: m.Src, Dst: f.name, Ctx: m.Ctx,
					Trace: m.Trace,
				}
				c.deliver(pr, f, d)
			}
		})
	}
	for i := 0; i < f.spec.Workers; i++ {
		c.Eng.Spawn(fmt.Sprintf("%s/worker-%d", f.name, i), func(pr *sim.Proc) {
			c.functionWorker(pr, f)
		})
	}
}

// WaitReady blocks pr until cluster setup (QP establishment) finished.
func (c *Cluster) WaitReady(pr *sim.Proc) {
	if c.isReady {
		return
	}
	c.ready.Get(pr)
	c.ready.TryPut(struct{}{}) // let other waiters through
}

// getBufferRetry allocates with bounded backoff under pool pressure.
func (c *Cluster) getBufferRetry(pr *sim.Proc, pool *mempool.Pool, owner mempool.Owner) (mempool.Buffer, error) {
	for attempt := 0; ; attempt++ {
		b, err := pool.Get(owner)
		if err == nil {
			return b, nil
		}
		if attempt > 1000 {
			return mempool.Buffer{}, err
		}
		pr.Sleep(10 * time.Microsecond)
	}
}

// SubmitChain issues one external request for chain through the ingress.
// reply is invoked (engine context) when the response reaches the client.
func (c *Cluster) SubmitChain(chain string, client int, reply func(ingress.Response)) {
	c.SubmitChainSpec(chain, client, 0, 0, reply)
}

// SubmitChainSpec is SubmitChain with per-request speculation overrides:
// clone > 0 overrides the gateway policy's clone factor, hedge > 0 forces a
// hedged retry with that deadline floor (trace replays carry both).
func (c *Cluster) SubmitChainSpec(chain string, client int, clone int, hedge time.Duration, reply func(ingress.Response)) {
	spec, ok := c.chains[chain]
	if !ok {
		panic(fmt.Sprintf("core: unknown chain %q", chain))
	}
	now := c.Eng.Now()
	tr := c.tracer.StartRequest("chain/" + chain)
	c.gw.Submit(ingress.Request{
		Client: client, Chain: chain,
		Bytes: spec.ReqBytes, RespBytes: spec.RespBytes,
		Stamp: now,
		Trace: tr,
		Clone: clone,
		Hedge: hedge,
		Reply: func(r ingress.Response) {
			c.Completed.Inc(1)
			c.ChainLatency[chain].Observe(c.Eng.Now() - r.Stamp)
			tr.Finish()
			if reply != nil {
				reply(r)
			}
		},
	})
}
