package core

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// scaleConfig deploys one slow backend that is allowed to scale out.
func scaleConfig(maxScale int) Config {
	return Config{
		System: NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []FunctionSpec{
			{Name: "entry", Node: "node1", Service: 5 * time.Microsecond, Workers: 32},
			{
				Name: "worker", Node: "node2", Service: 200 * time.Microsecond,
				Workers: 4, MaxScale: maxScale, TargetConcurrency: 4,
			},
		},
		Chains: []ChainSpec{{
			Name: "job", Entry: "entry", ReqBytes: 256, RespBytes: 256,
			Calls: []Call{{Callee: "worker", ReqBytes: 512, RespBytes: 512}},
		}},
		AutoscaleEvery: 2 * time.Millisecond,
		Seed:           1,
	}
}

func driveScale(t *testing.T, c *Cluster, clients int, dur time.Duration) uint64 {
	t.Helper()
	for i := 0; i < clients; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("job", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(dur)
	return c.Completed.Total()
}

func TestAutoscalerAddsInstancesUnderLoad(t *testing.T) {
	c := NewCluster(scaleConfig(4))
	defer c.Eng.Stop()
	done := driveScale(t, c, 48, 400*time.Millisecond)
	g := c.Group("worker")
	if g.Instances() < 2 {
		t.Fatalf("group never scaled: %d instances", g.Instances())
	}
	ups, _ := g.ScaleEvents()
	if ups == 0 {
		t.Fatal("no scale-up events recorded")
	}
	if done < 1000 {
		t.Fatalf("completed only %d requests", done)
	}
	// Instances must actually share the load: every enabled instance has
	// served traffic (its core shows busy time).
	for i, inst := range g.instances {
		if g.enabled[i] && inst.core.BusyTime() == 0 {
			t.Errorf("instance %s routable but idle", inst.name)
		}
	}
}

func TestAutoscalerImprovesThroughput(t *testing.T) {
	single := NewCluster(scaleConfig(1))
	defer single.Eng.Stop()
	one := driveScale(t, single, 48, 400*time.Millisecond)

	scaled := NewCluster(scaleConfig(4))
	defer scaled.Eng.Stop()
	four := driveScale(t, scaled, 48, 400*time.Millisecond)

	// A 200us backend at concurrency 4 caps ~20K RPS per instance;
	// scaling to 4 instances should multiply throughput substantially.
	ratio := float64(four) / float64(one)
	if ratio < 1.8 {
		t.Fatalf("scale-out speedup = %.2fx (%d vs %d), want >= 1.8x", ratio, four, one)
	}
}

func TestAutoscalerDrainsWhenLoadFades(t *testing.T) {
	c := NewCluster(scaleConfig(4))
	defer c.Eng.Stop()
	// Heavy phase.
	stopped := false
	for i := 0; i < 48; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for !stopped {
				c.SubmitChain("job", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(300 * time.Millisecond)
	g := c.Group("worker")
	peak := g.Instances()
	if peak < 2 {
		t.Fatalf("never scaled up (instances = %d)", peak)
	}
	// Load vanishes; the group drains back toward one instance.
	stopped = true
	c.Eng.RunUntil(c.Eng.Now() + 300*time.Millisecond)
	if got := g.Instances(); got >= peak {
		t.Fatalf("instances did not drain: peak %d, now %d", peak, got)
	}
	_, downs := g.ScaleEvents()
	if downs == 0 {
		t.Fatal("no scale-down events recorded")
	}
}

func TestNoAutoscalingByDefault(t *testing.T) {
	c := NewCluster(scaleConfig(1))
	defer c.Eng.Stop()
	driveScale(t, c, 32, 200*time.Millisecond)
	if got := c.Group("worker").Instances(); got != 1 {
		t.Fatalf("MaxScale 1 grew to %d instances", got)
	}
}
