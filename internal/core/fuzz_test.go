package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadConfig hammers the JSON cluster-config loader with arbitrary
// bytes. Properties: never panic; anything accepted must satisfy Validate
// (LoadConfig promises validated output) and be buildable-shaped (nodes and
// functions present, chains resolvable).
func FuzzLoadConfig(f *testing.F) {
	// Seed with the shipped sample configs so the fuzzer starts from deep
	// valid structures rather than discovering JSON syntax from scratch.
	for _, name := range []string{"sample-cluster.json", "boutique.json"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", name)); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"system":"nadino-dne","nodes":["n1"],"functions":[{"name":"f","node":"n1","service":"10us"}]}`))
	f.Add([]byte(`{"system":"spright","nodes":["n1"],"functions":[{"name":"f","node":"elsewhere"}]}`))
	f.Add([]byte(`{"system":"nadino-dne","nodes":["n1","n1"],"functions":[{"name":"f","node":"n1"}]}`))
	f.Add([]byte(`{"system":"nadino-dne","nodes":["n1"],"functions":[{"name":"f","node":"n1"}],` +
		`"chains":[{"name":"c","entry":"f","calls":[{"callee":"ghost"}]}]}`))
	f.Add([]byte(`{"system":"nadino-dne","unknown_field":1}`))
	f.Add([]byte(`{"system":"nadino-dne","functions":[{"service":"not-a-duration"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := LoadConfig(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("LoadConfig accepted a config Validate rejects: %v\ninput: %q", err, data)
		}
		if len(cfg.Nodes) == 0 || len(cfg.Functions) == 0 {
			t.Fatalf("accepted config with %d nodes / %d functions: %q",
				len(cfg.Nodes), len(cfg.Functions), data)
		}
	})
}
