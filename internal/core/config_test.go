package core

import (
	"strings"
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
)

const sampleConfig = `{
  "system": "nadino-dne",
  "tenant": "shop",
  "nodes": ["node1", "node2"],
  "functions": [
    {"name": "front", "node": "node1", "service": "25us", "workers": 16},
    {"name": "back", "node": "node2", "service": "100us", "workers": 4,
     "max_scale": 3, "target_concurrency": 4, "cold_start": "2ms", "keep_warm": "50ms"}
  ],
  "chains": [
    {"name": "main", "entry": "front", "req_bytes": 512, "resp_bytes": 2048,
     "calls": [
       {"callee": "back", "req_bytes": 1024, "resp_bytes": 1024, "async": true},
       {"callee": "back", "req_bytes": 1024, "resp_bytes": 1024, "async": true}
     ]}
  ],
  "ingress_workers": 2,
  "gateways": true,
  "gateway_window": 16,
  "seed": 7
}`

func TestLoadConfig(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System != NadinoDNE || cfg.Tenant != "shop" || cfg.Seed != 7 {
		t.Fatalf("header mismatch: %+v", cfg)
	}
	if len(cfg.Functions) != 2 || len(cfg.Chains) != 1 {
		t.Fatalf("counts: %d fns, %d chains", len(cfg.Functions), len(cfg.Chains))
	}
	back := cfg.Functions[1]
	if back.Service != 100*time.Microsecond || back.MaxScale != 3 ||
		back.ColdStart != 2*time.Millisecond || back.KeepWarm != 50*time.Millisecond {
		t.Fatalf("back spec mismatch: %+v", back)
	}
	if !cfg.Chains[0].Calls[0].Async {
		t.Fatal("async flag lost")
	}
	if !cfg.Gateways || cfg.GatewayWindow != 16 {
		t.Fatalf("gateway config lost: gateways=%v window=%d", cfg.Gateways, cfg.GatewayWindow)
	}
}

func TestLoadedConfigRuns(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(cfg)
	defer c.Eng.Stop()
	done := 0
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
		for i := 0; i < 50; i++ {
			c.SubmitChain("main", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
			done++
		}
	})
	c.Eng.RunUntil(2 * time.Second)
	if done != 50 {
		t.Fatalf("completed %d of 50", done)
	}
}

func TestParseSystem(t *testing.T) {
	for _, name := range SystemNames() {
		if _, err := ParseSystem(name); err != nil {
			t.Errorf("ParseSystem(%q): %v", name, err)
		}
	}
	if _, err := ParseSystem(" NADINO-DNE "); err != nil {
		t.Error("ParseSystem should be case/space tolerant")
	}
	if _, err := ParseSystem("openwhisk"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	base := func() Config {
		cfg, err := LoadConfig(strings.NewReader(sampleConfig))
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = nil }},
		{"no functions", func(c *Config) { c.Functions = nil }},
		{"duplicate node", func(c *Config) { c.Nodes = append(c.Nodes, "node1") }},
		{"duplicate function", func(c *Config) { c.Functions = append(c.Functions, c.Functions[0]) }},
		{"bad placement", func(c *Config) { c.Functions[0].Node = "ghost" }},
		{"bad entry", func(c *Config) { c.Chains[0].Entry = "ghost" }},
		{"bad callee", func(c *Config) { c.Chains[0].Calls[0].Callee = "ghost" }},
		{"duplicate chain", func(c *Config) { c.Chains = append(c.Chains, c.Chains[0]) }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", tc.name)
		}
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(sampleConfig, `"seed": 7`, `"sed": 7`, 1)
	if _, err := LoadConfig(strings.NewReader(bad)); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestLoadConfigRejectsBadDuration(t *testing.T) {
	bad := strings.Replace(sampleConfig, `"25us"`, `"25lightyears"`, 1)
	if _, err := LoadConfig(strings.NewReader(bad)); err == nil {
		t.Fatal("bad duration accepted")
	}
}
