package core

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/sim"
	"nadino/internal/speculate"
)

// runSpecLoad drives n closed-loop clients against a cluster with the given
// speculation policy and discipline, returning the cluster after dur.
func runSpecLoad(t *testing.T, pol speculate.Policy, ps bool, n int, dur time.Duration) *Cluster {
	t.Helper()
	cfg := testConfig(NadinoDNE)
	cfg.Speculate = pol
	cfg.PSCores = ps
	c := NewCluster(cfg)
	t.Cleanup(c.Eng.Stop)
	for i := 0; i < n; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("mix", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(dur)
	return c
}

// TestSpeculationCompletesOnce is the cluster-level exactly-once check: with
// clone factor 3 every request still completes exactly once at the client,
// groups resolve exactly once, and all loser arms are accounted as cancels
// or mid-plane kills.
func TestSpeculationCompletesOnce(t *testing.T) {
	c := runSpecLoad(t, speculate.Policy{CloneN: 3}, false, 4, 300*time.Millisecond)
	done := c.Completed.Total()
	if done < 50 {
		t.Fatalf("completed only %d requests", done)
	}
	sp := c.Gateway().Spec()
	if sp == nil {
		t.Fatal("gateway has no speculation controller")
	}
	st := sp.Stats()
	if st.Launched == 0 || st.Clones == 0 {
		t.Fatalf("stats %+v: no clones launched", st)
	}
	// A group wins at the ingress boundary; the client completion lands an
	// external-network delay later, so at cutoff wins may lead completions
	// by at most the number of in-flight clients.
	if st.Wins() < done || st.Wins() > done+4 {
		t.Fatalf("wins %d vs completions %d: groups must resolve exactly once", st.Wins(), done)
	}
	// Every fired arm either won, was suppressed at the boundary, or was
	// killed mid-plane; in-flight arms at cutoff make <= not ==.
	if st.Cancels+st.Kills+st.Wins() > st.Arms {
		t.Fatalf("stats %+v: more resolutions than arms", st)
	}
	if st.Kills == 0 && st.Cancels == 0 {
		t.Fatalf("stats %+v: cloning never cancelled a loser", st)
	}
}

// specConservationRun drives a fixed request count to completion and drain,
// returning per-node pool in-use counts (steady-state RQ postings included).
func specConservationRun(t *testing.T, pol speculate.Policy) (*Cluster, []int) {
	t.Helper()
	cfg := testConfig(NadinoDNE)
	cfg.Speculate = pol
	c := NewCluster(cfg)
	t.Cleanup(c.Eng.Stop)
	const reqs = 200
	respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		for i := 0; i < reqs; i++ {
			c.SubmitChain("mix", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
		}
	})
	// Run well past the last completion so every loser has died and
	// returned its buffer.
	c.Eng.RunUntil(3 * time.Second)
	if got := c.Completed.Total(); got != reqs {
		t.Fatalf("completed %d, want %d", got, reqs)
	}
	inuse := make([]int, 0, len(c.cfg.Nodes))
	for _, node := range c.cfg.Nodes {
		inuse = append(inuse, c.nodes[node].pool(c.cfg.Tenant).InUse())
	}
	return c, inuse
}

// TestSpeculationConservesBuffers checks that cancelled clones return their
// pool buffers: after a drained run the tenant pools hold exactly what an
// identical unspeculated run holds (the steady-state receive postings).
func TestSpeculationConservesBuffers(t *testing.T) {
	_, base := specConservationRun(t, speculate.Policy{})
	c, spec := specConservationRun(t, speculate.Policy{CloneN: 3, Hedge: true, HedgeMin: 50 * time.Microsecond})
	for i, node := range c.cfg.Nodes {
		if spec[i] != base[i] {
			t.Fatalf("node %s: %d buffers in use with speculation, %d without — clones leak",
				node, spec[i], base[i])
		}
	}
	sp := c.Gateway().Spec()
	if sp.Stats().Kills == 0 {
		t.Fatalf("stats %+v: no mid-plane kills exercised", sp.Stats())
	}
	if sp.PendingHedges() != 0 {
		t.Fatalf("%d hedge timers still armed after drain", sp.PendingHedges())
	}
}

// TestHedgingEndToEnd drives a hedged (no-clone) cluster and checks hedge
// arms fire and win occasionally without breaking exactly-once.
func TestHedgingEndToEnd(t *testing.T) {
	c := runSpecLoad(t, speculate.Policy{CloneN: 1, Hedge: true, HedgeMin: 10 * time.Microsecond}, false,
		8, 300*time.Millisecond)
	st := c.Gateway().Spec().Stats()
	if st.Hedges == 0 {
		t.Fatalf("stats %+v: no hedges fired despite a 10µs floor", st)
	}
	if st.Wins() != c.Completed.Total() {
		t.Fatalf("wins %d != completions %d", st.Wins(), c.Completed.Total())
	}
}

// TestPSClusterServes runs the whole cluster with processor-sharing function
// cores and checks it still serves, with completions near the FCFS run (PS
// changes latency shape, not conservation).
func TestPSClusterServes(t *testing.T) {
	ps := runSpecLoad(t, speculate.Policy{}, true, 8, 300*time.Millisecond)
	if ps.Completed.Total() < 50 {
		t.Fatalf("PS cluster completed only %d requests", ps.Completed.Total())
	}
	for _, f := range ps.fnSeq {
		if f.core.Discipline() != sim.PS {
			t.Fatalf("function %s core is %v, want PS", f.name, f.core.Discipline())
		}
	}
	fcfs := runSpecLoad(t, speculate.Policy{}, false, 8, 300*time.Millisecond)
	lo, hi := ps.Completed.Total(), fcfs.Completed.Total()
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*2 < hi {
		t.Fatalf("PS (%d) and FCFS (%d) throughput differ wildly", ps.Completed.Total(), fcfs.Completed.Total())
	}
}

// TestSpecDeterminism: same seed, same speculation config => identical
// completion counts and spec stats.
func TestSpecDeterminism(t *testing.T) {
	pol := speculate.Policy{CloneN: 2, Hedge: true, HedgeMin: 20 * time.Microsecond}
	a := runSpecLoad(t, pol, true, 6, 200*time.Millisecond)
	b := runSpecLoad(t, pol, true, 6, 200*time.Millisecond)
	if a.Completed.Total() != b.Completed.Total() {
		t.Fatalf("completions diverge: %d vs %d", a.Completed.Total(), b.Completed.Total())
	}
	sa, sb := a.Gateway().Spec().Stats(), b.Gateway().Spec().Stats()
	if sa != sb {
		t.Fatalf("spec stats diverge:\n%+v\n%+v", sa, sb)
	}
}
