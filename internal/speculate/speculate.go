// Package speculate implements speculative request execution for the
// NADINO request path: clone-to-N with cancel-on-first-complete, and hedged
// retries that fire a duplicate once a request outlives the chain's rolling
// P95 latency (the request-cloning-under-processor-sharing design from
// arXiv 2002.04416, grafted onto a real multi-tenant data plane).
//
// The package owns only the speculation *decisions*: which arms to fire,
// when the hedge timer goes off, which completion is the winner. The
// resources each arm holds — pool buffers, gateway credits, in-flight WR
// state — stay owned by the layers that acquired them; carriers learn a
// clone lost through the descriptor's cancellation probe (see
// mempool.Descriptor.Spec) or the boundary's Finish verdict, and return
// their own resources at whatever stage the clone died. Losing completions
// are deduplicated at the ingress boundary: Finish returns true exactly
// once per group, so every cloned request completes exactly once upstream.
//
// Everything runs in engine context on virtual time; hedge timers are
// generation-fenced engine events, so a cancel can never touch a recycled
// timer slot.
package speculate

import (
	"time"

	"nadino/internal/sim"
)

// Arm classes, by how the arm came to be fired.
const (
	// ArmPrimary is the request's first arm (always fired).
	ArmPrimary = 0
)

// Policy configures speculation for a request source.
type Policy struct {
	// CloneN is the number of arms fired immediately per request (1 = no
	// cloning; 0 is normalized to 1).
	CloneN int
	// Hedge fires one extra arm if the request is still unresolved after
	// the chain's rolling P95 latency.
	Hedge bool
	// HedgeMin floors the hedge deadline and stands in for it while the
	// latency window is still cold.
	HedgeMin time.Duration
	// Window is the per-chain rolling latency window the P95 deadline is
	// computed over (default 64).
	Window int
}

// Enabled reports whether the policy speculates at all.
func (p Policy) Enabled() bool { return p.CloneN > 1 || p.Hedge }

// Stats is the spec.* counter family.
type Stats struct {
	Launched   uint64 // groups launched
	Arms       uint64 // total arms fired (primary + clones + hedges)
	Clones     uint64 // extra clone arms fired at launch
	Hedges     uint64 // hedge arms fired after the deadline
	WinPrimary uint64 // groups won by the primary arm
	WinClone   uint64 // groups won by a launch-time clone
	WinHedge   uint64 // groups won by the hedge arm
	Cancels    uint64 // loser completions suppressed at the boundary
	Kills      uint64 // clones killed mid-plane by the cancellation probe
	LateFires  uint64 // hedge timers that fired after their group had won
}

// Wins reports the total resolved groups.
func (s Stats) Wins() uint64 { return s.WinPrimary + s.WinClone + s.WinHedge }

// Tracker keeps a rolling window of observed chain latencies and serves the
// P95 hedge deadline over it. The window is a fixed ring; the quantile is
// recomputed only when dirty, over a scratch copy, so steady-state Observe
// is O(1) and allocation-free once warm.
type Tracker struct {
	ring    []time.Duration
	scratch []time.Duration
	n       int // filled entries
	pos     int // next write
	dirty   bool
	p95     time.Duration
}

// NewTracker returns a tracker over a window of size entries (default 64).
func NewTracker(window int) *Tracker {
	if window <= 0 {
		window = 64
	}
	return &Tracker{
		ring:    make([]time.Duration, window),
		scratch: make([]time.Duration, window),
	}
}

// Observe records one completed-request latency.
func (t *Tracker) Observe(d time.Duration) {
	t.ring[t.pos] = d
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.dirty = true
}

// Count reports how many observations the window currently holds.
func (t *Tracker) Count() int { return t.n }

// P95 reports the 95th-percentile latency over the window (0 while empty).
func (t *Tracker) P95() time.Duration {
	if t.n == 0 {
		return 0
	}
	if t.dirty {
		s := t.scratch[:t.n]
		copy(s, t.ring[:t.n])
		// Insertion sort: the window is small (tens of entries) and often
		// nearly sorted between recomputes.
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		idx := (t.n*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		t.p95 = s[idx]
		t.dirty = false
	}
	return t.p95
}

// Spec is an engine-bound speculation controller: one per request source
// (the ingress gateway, an experiment rig), holding per-chain latency
// trackers and the spec.* counters.
type Spec struct {
	eng      *sim.Engine
	pol      Policy
	trackers map[string]*Tracker
	stats    Stats
	pending  int // armed hedge timers not yet fired or cancelled
}

// New returns a controller for pol bound to eng.
func New(eng *sim.Engine, pol Policy) *Spec {
	if pol.CloneN < 1 {
		pol.CloneN = 1
	}
	return &Spec{eng: eng, pol: pol, trackers: make(map[string]*Tracker)}
}

// Policy returns the controller's policy.
func (s *Spec) Policy() Policy { return s.pol }

// Stats returns a snapshot of the spec.* counters.
func (s *Spec) Stats() Stats { return s.stats }

// PendingHedges reports hedge timers currently armed. At quiesce this must
// be zero: every group either won (cancelling its timer) or its timer fired.
func (s *Spec) PendingHedges() int { return s.pending }

// Tracker returns (creating on first use) the chain's latency tracker.
func (s *Spec) Tracker(chain string) *Tracker {
	t, ok := s.trackers[chain]
	if !ok {
		t = NewTracker(s.pol.Window)
		s.trackers[chain] = t
	}
	return t
}

// Deadline reports the hedge deadline currently in effect for chain: the
// rolling P95, floored by HedgeMin (which alone serves a cold window).
func (s *Spec) Deadline(chain string) time.Duration {
	d := s.Tracker(chain).P95()
	if d < s.pol.HedgeMin {
		d = s.pol.HedgeMin
	}
	return d
}

// Group tracks one speculated request: the arms in flight and the win
// state. All methods must run in engine context.
type Group struct {
	s     *Spec
	chain string
	start time.Duration

	arms   int // arms fired so far (hedge included once it fires)
	won    bool
	wonArm int
	wonAt  time.Duration

	hedge       sim.Event // generation-fenced: cancel after fire is a no-op
	hedgeArmed  bool
	clone       int // clone factor at launch (overridable per request)
	hedgeOn     bool
	hedgeMinReq time.Duration
}

// Launch fires a request's arms: fire(g, arm) must issue arm's copy of the
// request and report whether it was actually sent (a false return — pool
// exhausted, no route — does not count the arm). The group is passed to
// fire so carriers can attach its cancellation probe to the descriptors
// they create. Arms are fired synchronously in index order; if the policy
// hedges, one extra arm is scheduled after the chain's rolling deadline.
// cloneOverride/hedgeOverride customize the policy per request (trace
// replays carry their own clone factor and hedge deadline): cloneOverride 0
// defers to the policy, as does a negative hedgeOverride; hedgeOverride 0
// with Hedge off stays unhedged.
func (s *Spec) Launch(chain string, cloneOverride int, hedgeOverride time.Duration, fire func(g *Group, arm int) bool) *Group {
	g := &Group{s: s, chain: chain, start: s.eng.Now(), clone: s.pol.CloneN, hedgeOn: s.pol.Hedge, hedgeMinReq: -1}
	if cloneOverride > 0 {
		g.clone = cloneOverride
	}
	if hedgeOverride > 0 {
		g.hedgeOn = true
		g.hedgeMinReq = hedgeOverride
	}
	s.stats.Launched++
	for arm := 0; arm < g.clone; arm++ {
		if !fire(g, arm) {
			continue
		}
		g.arms++
		s.stats.Arms++
		if arm > ArmPrimary {
			s.stats.Clones++
		}
	}
	if g.hedgeOn && g.arms > 0 {
		deadline := s.Deadline(chain)
		if g.hedgeMinReq > deadline {
			deadline = g.hedgeMinReq
		}
		g.hedgeArmed = true
		s.pending++
		g.hedge = s.eng.After(deadline, func() {
			g.hedgeArmed = false
			s.pending--
			if g.won {
				// The cancel raced the firing instant; count it, fire
				// nothing.
				s.stats.LateFires++
				return
			}
			arm := g.arms
			if fire(g, arm) {
				g.arms++
				s.stats.Arms++
				s.stats.Hedges++
			}
		})
	}
	return g
}

// Arms reports how many arms the group has fired so far.
func (g *Group) Arms() int { return g.arms }

// Chain reports the group's chain name.
func (g *Group) Chain() string { return g.chain }

// HedgeArm reports the arm index a hedge fires as (== launch-time arms).
func (g *Group) HedgeArm() int { return g.arms }

// Won reports whether some arm already completed. Descriptor cancellation
// probes call this from any stage of the data plane: true means the carrier
// should kill the clone and return its resources.
func (g *Group) Won() bool { return g != nil && g.won }

// WonAt reports the win instant (meaningful only once Won).
func (g *Group) WonAt() time.Duration { return g.wonAt }

// Killed is the descriptor cancellation probe (mempool.Descriptor.Spec):
// carriers call it at drop-decision points, and a true return means the
// group already won elsewhere — the carrier must kill this clone and return
// its resources. The kill is counted here (Stats.Kills), so a carrier calls
// the probe at most once per descriptor death.
func (g *Group) Killed() bool {
	if g == nil || !g.won {
		return false
	}
	g.s.stats.Kills++
	return true
}

// CancelVisible reports whether a cancel issued at the win instant has
// propagated to an observer delay away — carriers that model cancellation
// latency kill clones only once the cancel is visible to them.
func (g *Group) CancelVisible(delay time.Duration) bool {
	return g.won && g.s.eng.Now() >= g.wonAt+delay
}

// Finish resolves arm's completion at the ingress boundary. It returns true
// exactly once per group — for the first arm to complete, which becomes the
// winner: its latency feeds the chain tracker and any armed hedge timer is
// cancelled. Every later completion returns false (a cancelled loser whose
// resources the caller must return) and counts toward Stats.Cancels.
func (g *Group) Finish(arm int) bool {
	s := g.s
	if g.won {
		s.stats.Cancels++
		return false
	}
	g.won = true
	g.wonArm = arm
	g.wonAt = s.eng.Now()
	if g.hedgeArmed {
		// Generation-fenced: if the timer fired at this same instant the
		// cancel is a no-op and the closure's won-check suppresses the arm.
		g.hedge.Cancel()
		g.hedgeArmed = false
		s.pending--
	}
	s.Tracker(g.chain).Observe(g.wonAt - g.start)
	switch {
	case arm == ArmPrimary:
		s.stats.WinPrimary++
	case arm < g.clone:
		s.stats.WinClone++
	default:
		s.stats.WinHedge++
	}
	return true
}

// WonArm reports the winning arm's index (meaningful only once Won).
func (g *Group) WonArm() int { return g.wonArm }
