package speculate

import (
	"testing"
	"time"

	"nadino/internal/sim"
)

func TestCloneFirstCompleteWins(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 3})
	var fired []int
	g := s.Launch("echo", 0, -1, func(g *Group, arm int) bool {
		fired = append(fired, arm)
		return true
	})
	if len(fired) != 3 || g.Arms() != 3 {
		t.Fatalf("fired arms %v (count %d), want [0 1 2]", fired, g.Arms())
	}
	if g.Won() {
		t.Fatal("group won before any completion")
	}
	if !g.Finish(2) {
		t.Fatal("first completion must win")
	}
	if g.Finish(0) || g.Finish(1) {
		t.Fatal("loser completions must be suppressed")
	}
	st := s.Stats()
	if st.Launched != 1 || st.Arms != 3 || st.Clones != 2 {
		t.Fatalf("stats %+v: want 1 launched, 3 arms, 2 clones", st)
	}
	if st.WinClone != 1 || st.WinPrimary != 0 || st.Cancels != 2 {
		t.Fatalf("stats %+v: want clone win and 2 cancels", st)
	}
	if g.WonArm() != 2 {
		t.Fatalf("winning arm %d, want 2", g.WonArm())
	}
}

func TestFailedArmDoesNotCount(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 3})
	g := s.Launch("echo", 0, -1, func(g *Group, arm int) bool { return arm != 1 })
	if g.Arms() != 2 {
		t.Fatalf("arms %d, want 2 (arm 1 failed to issue)", g.Arms())
	}
	if s.Stats().Clones != 1 {
		t.Fatalf("clones %d, want 1", s.Stats().Clones)
	}
}

func TestHedgeFiresAfterDeadline(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 1, Hedge: true, HedgeMin: 100 * time.Microsecond})
	var firedAt []time.Duration
	g := s.Launch("echo", 0, -1, func(g *Group, arm int) bool {
		firedAt = append(firedAt, eng.Now())
		return true
	})
	if s.PendingHedges() != 1 {
		t.Fatalf("pending hedges %d, want 1", s.PendingHedges())
	}
	eng.RunUntil(time.Millisecond)
	if len(firedAt) != 2 || firedAt[1] != 100*time.Microsecond {
		t.Fatalf("arm fire times %v, want hedge at 100µs", firedAt)
	}
	if g.Arms() != 2 || s.Stats().Hedges != 1 {
		t.Fatalf("arms=%d hedges=%d, want 2 and 1", g.Arms(), s.Stats().Hedges)
	}
	if s.PendingHedges() != 0 {
		t.Fatalf("pending hedges %d after fire, want 0", s.PendingHedges())
	}
	if !g.Finish(1) {
		t.Fatal("hedge completion must win")
	}
	if s.Stats().WinHedge != 1 {
		t.Fatalf("stats %+v: want a hedge win", s.Stats())
	}
}

func TestWinCancelsHedgeTimer(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 1, Hedge: true, HedgeMin: 100 * time.Microsecond})
	fires := 0
	g := s.Launch("echo", 0, -1, func(g *Group, arm int) bool { fires++; return true })
	eng.At(10*time.Microsecond, func() {
		if !g.Finish(0) {
			t.Fatal("primary completion must win")
		}
	})
	eng.RunUntil(time.Millisecond)
	if fires != 1 {
		t.Fatalf("%d arms fired, want 1 (hedge cancelled by the win)", fires)
	}
	if s.PendingHedges() != 0 || s.Stats().LateFires != 0 {
		t.Fatalf("pending=%d late=%d after cancelled hedge, want 0/0",
			s.PendingHedges(), s.Stats().LateFires)
	}
}

func TestHedgeDeadlineTracksP95(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 1, Hedge: true, HedgeMin: 10 * time.Microsecond})
	if d := s.Deadline("echo"); d != 10*time.Microsecond {
		t.Fatalf("cold deadline %v, want the HedgeMin floor", d)
	}
	tr := s.Tracker("echo")
	for i := 1; i <= 100; i++ {
		tr.Observe(time.Duration(i) * time.Microsecond)
	}
	// Window 64 holds 37..100µs; P95 lands near the top of that range.
	d := s.Deadline("echo")
	if d < 90*time.Microsecond || d > 100*time.Microsecond {
		t.Fatalf("rolling deadline %v, want ~P95 of the window (90..100µs)", d)
	}
}

func TestPerRequestOverrides(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 1})
	fires := 0
	g := s.Launch("echo", 3, 50*time.Microsecond, func(g *Group, arm int) bool { fires++; return true })
	if fires != 3 || g.Arms() != 3 {
		t.Fatalf("clone override fired %d arms, want 3", fires)
	}
	if s.PendingHedges() != 1 {
		t.Fatal("hedge override must arm a timer")
	}
	eng.RunUntil(time.Millisecond)
	if g.Arms() != 4 {
		t.Fatalf("arms %d after hedge override fired, want 4", g.Arms())
	}
}

func TestTrackerRollingWindow(t *testing.T) {
	tr := NewTracker(4)
	for _, v := range []time.Duration{100, 200, 300, 400, 500} {
		tr.Observe(v * time.Microsecond)
	}
	if tr.Count() != 4 {
		t.Fatalf("count %d, want the window size 4", tr.Count())
	}
	// Window now holds 200..500µs; P95 index covers the max.
	if got := tr.P95(); got != 500*time.Microsecond {
		t.Fatalf("P95 %v, want 500µs", got)
	}
}

func TestCancelVisible(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 2})
	g := s.Launch("echo", 0, -1, func(g *Group, arm int) bool { return true })
	eng.At(10*time.Microsecond, func() { g.Finish(0) })
	eng.At(12*time.Microsecond, func() {
		if g.CancelVisible(5 * time.Microsecond) {
			t.Fatal("cancel visible before the propagation delay elapsed")
		}
	})
	eng.At(20*time.Microsecond, func() {
		if !g.CancelVisible(5 * time.Microsecond) {
			t.Fatal("cancel must be visible after the propagation delay")
		}
	})
	eng.RunUntil(time.Millisecond)
	var nilGroup *Group
	if nilGroup.Won() {
		t.Fatal("nil group must report not-won")
	}
}

// BenchmarkCloneFanout measures the launch/finish cycle at clone factor 3
// with hedging armed — the per-request control-plane cost of speculation.
func BenchmarkCloneFanout(b *testing.B) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	s := New(eng, Policy{CloneN: 3, Hedge: true, HedgeMin: time.Millisecond})
	fire := func(g *Group, arm int) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := s.Launch("bench", 0, -1, fire)
		g.Finish(0)
		g.Finish(1)
		g.Finish(2)
	}
	eng.Run()
}
