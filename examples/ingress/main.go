// Ingress: NADINO's HTTP/TCP->RDMA gateway under a rising load, with the
// hysteresis autoscaler adding busy-polling workers as demand grows and
// removing them when it fades — a miniature of Fig. 14.
package main

import (
	"fmt"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/workload"
)

func main() {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()

	backend := ingress.DefaultEchoBackend(eng, p, ingress.Nadino, 16)
	gw := ingress.New(eng, p, ingress.Config{
		Kind:           ingress.Nadino,
		InitialWorkers: 1,
		MaxWorkers:     8,
		AutoScale:      true,
	}, backend)
	gw.StartRecorder(250 * time.Millisecond)

	clients := workload.NewClientPool(eng, p, gw, 512, 512)
	clients.ConnsPerClient = 16
	clients.OpenLoopRate = 40000
	// One more saturating client every second; they all stop at 6s.
	clients.RampUp(5, time.Second)
	eng.At(6*time.Second, clients.Stop)
	eng.RunUntil(10 * time.Second)

	fmt.Println("time   workers  cores-in-use  RPS")
	for ts := 500 * time.Millisecond; ts <= 10*time.Second; ts += 500 * time.Millisecond {
		fmt.Printf("%5.1fs  %7.0f  %12.1f  %s\n",
			ts.Seconds(),
			gw.WorkersSeries.At(ts),
			gw.CPUSeries.At(ts),
			fmtRPS(gw.RPSSeries.At(ts)))
	}
	fmt.Printf("\nserved %d requests; scale events: %d\n", gw.Served(), gw.ScaleEvents())
	fmt.Println("the gateway rode the load up and back down — busy-poll performance,")
	fmt.Println("elastic CPU footprint (§3.6).")
}

func fmtRPS(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.1fK", v/1000)
	}
	return fmt.Sprintf("%.0f", v)
}
