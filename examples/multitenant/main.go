// Multitenant: three tenants share one DPU network engine. With the
// first-come-first-served baseline, bursty tenants starve the steady one;
// with NADINO's DWRR scheduler the engine's capacity splits exactly by the
// configured weights (6:1:2) — a miniature of Fig. 15.
package main

import (
	"fmt"
	"time"

	"nadino/internal/experiments"
)

func main() {
	res := experiments.Fig15(experiments.Opts{Quick: true, Seed: 1})
	lo, hi := res.AllActiveLo, res.AllActiveHi

	fmt.Println("three tenants (weights 6:1:2) competing for one capped DNE:")
	for _, run := range []struct {
		name   string
		shares map[string]float64
	}{
		{"FCFS (no isolation)", res.FCFS.SharesBetween(lo, hi)},
		{"NADINO DWRR", res.DWRR.SharesBetween(lo, hi)},
	} {
		total := run.shares["tenant1"] + run.shares["tenant2"] + run.shares["tenant3"]
		fmt.Printf("\n  %s:\n", run.name)
		for _, t := range []string{"tenant1", "tenant2", "tenant3"} {
			fmt.Printf("    %s  %8.0f RPS  (%.1f%% of aggregate)\n",
				t, run.shares[t], 100*run.shares[t]/total)
		}
	}
	fmt.Printf("\nwith DWRR the split tracks the 6:1:2 weights; FCFS follows whoever\n")
	fmt.Printf("shouts loudest. aggregate stays at the engine's capacity (~%.0f RPS).\n",
		res.DWRR.AggregateBetween(lo, hi))
	_ = time.Now
}
