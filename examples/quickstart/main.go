// Quickstart: deploy two functions on two worker nodes behind NADINO's
// data plane, invoke a chain through the HTTP/TCP->RDMA ingress, and print
// what happened.
//
// This exercises the whole stack end to end: the gateway converts the
// request to RDMA at the cluster edge, the entry function's node receives
// it zero-copy in its tenant pool, the inter-node hop flows through both
// DPU network engines over two-sided RDMA, and the intra-node hop uses
// SK_MSG descriptor passing with token-based ownership transfer.
package main

import (
	"fmt"
	"time"

	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

func main() {
	cfg := core.Config{
		System: core.NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []core.FunctionSpec{
			{Name: "hello", Node: "node1", Service: 20 * time.Microsecond},
			{Name: "world", Node: "node2", Service: 15 * time.Microsecond},
		},
		Chains: []core.ChainSpec{{
			Name: "greet", Entry: "hello", ReqBytes: 256, RespBytes: 1024,
			Calls: []core.Call{
				{Callee: "world", ReqBytes: 512, RespBytes: 2048},
			},
		}},
	}
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()

	const requests = 1000
	c.Eng.Spawn("client", func(pr *sim.Proc) {
		c.WaitReady(pr)
		respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
		for i := 0; i < requests; i++ {
			c.SubmitChain("greet", 0, func(r ingress.Response) { respQ.TryPut(r) })
			respQ.Get(pr)
		}
	})
	// The cluster's engines poll forever; run until the client is done.
	c.Eng.RunUntil(10 * time.Second)

	h := c.ChainLatency["greet"]
	fmt.Printf("completed %d requests over the NADINO data plane\n", h.Count())
	fmt.Printf("end-to-end latency: mean %v, p99 %v\n", h.Mean(), h.P99())
	for _, node := range []string{"node1", "node2"} {
		tx, rx, _, _, _ := c.Engine(node).Stats()
		fmt.Printf("DNE@%s handled %d TX / %d RX descriptors on its DPU core\n", node, tx, rx)
	}
}
