// Crosstenant: two tenants share the cluster. Within a tenant, functions
// exchange buffers zero copy; when tenant B's chain calls into tenant A's
// backend, the trusted sidecar copies the payload across the tenant
// boundary and the DWRR scheduler keeps their RDMA shares separate (§3.1).
package main

import (
	"fmt"
	"time"

	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

func main() {
	cfg := core.Config{
		System:  core.NadinoDNE,
		Tenant:  "tenant_a",
		Tenants: []core.TenantSpec{{Name: "tenant_a", Weight: 3}, {Name: "tenant_b", Weight: 1}},
		Nodes:   []string{"node1", "node2"},
		Functions: []core.FunctionSpec{
			{Name: "a-front", Tenant: "tenant_a", Node: "node1", Service: 15 * time.Microsecond},
			{Name: "a-back", Tenant: "tenant_a", Node: "node2", Service: 20 * time.Microsecond},
			{Name: "b-front", Tenant: "tenant_b", Node: "node1", Service: 15 * time.Microsecond},
		},
		Chains: []core.ChainSpec{
			{
				Name: "a-own", Tenant: "tenant_a", Entry: "a-front",
				ReqBytes: 512, RespBytes: 1024,
				Calls: []core.Call{{Callee: "a-back", ReqBytes: 2048, RespBytes: 2048}},
			},
			{
				// Tenant B consumes tenant A's backend service.
				Name: "b-borrows", Tenant: "tenant_b", Entry: "b-front",
				ReqBytes: 512, RespBytes: 1024,
				Calls: []core.Call{{Callee: "a-back", ReqBytes: 2048, RespBytes: 2048}},
			},
		},
	}
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()

	for _, chain := range []string{"a-own", "b-borrows"} {
		chain := chain
		c.Eng.Spawn("client-"+chain, func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for i := 0; i < 500; i++ {
				c.SubmitChain(chain, 0, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(5 * time.Second)

	fmt.Println("two tenants, one cluster:")
	for _, chain := range []string{"a-own", "b-borrows"} {
		h := c.ChainLatency[chain]
		fmt.Printf("  %-10s %4d requests, mean latency %v\n", chain, h.Count(), h.Mean())
	}
	fmt.Printf("\nsidecar copies across the tenant boundary: %d\n", c.CrossTenantCopies())
	fmt.Println("(the a-own chain paid zero copies — same-tenant traffic stays zero copy;")
	fmt.Println(" b-borrows paid one copy per boundary crossing, enforced by the sidecar.)")
}
