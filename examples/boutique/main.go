// Boutique: run the paper's Online Boutique workload (10 microservices,
// §4.3) on NADINO and on SPRIGHT, and compare throughput and latency for
// the Home Query chain — a miniature of Fig. 16 / Table 2.
package main

import (
	"fmt"
	"time"

	"nadino/internal/boutique"
	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

func run(sys core.System, clients int, dur time.Duration) (float64, time.Duration) {
	c := core.NewCluster(boutique.ClusterConfig(sys, 1))
	defer c.Eng.Stop()
	for i := 0; i < clients; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain(boutique.HomeQuery, id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	warm := c.P.QPSetupTime + 10*time.Millisecond
	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	c.ChainLatency[boutique.HomeQuery].Reset()
	c.Eng.RunUntil(warm + dur)
	return c.Completed.WindowRate(c.Eng.Now()), c.ChainLatency[boutique.HomeQuery].Mean()
}

func main() {
	const clients = 60
	fmt.Printf("Online Boutique, %s chain, %d clients:\n", boutique.HomeQuery, clients)
	for _, sys := range []core.System{core.NadinoDNE, core.NadinoCNE, core.Spright, core.NightCore} {
		rps, lat := run(sys, clients, 200*time.Millisecond)
		fmt.Printf("  %-13s %8.0f RPS   mean latency %v\n", sys.String(), rps, lat)
	}
	fmt.Println("\n(NADINO's DPU engine wins by terminating TCP at the edge and moving")
	fmt.Println(" every inter-node hop over two-sided RDMA, zero copy end to end.)")
}
